"""Tests for the parallel sweep + content-addressed cell cache.

The hard guarantees of :mod:`repro.experiments.parallel`:

* a ``jobs=N`` sweep returns results identical to the serial sweep,
  cell for cell (``wall_seconds`` excepted — it measures the host);
* a second sweep against the same ``cache_dir`` runs zero simulations
  yet returns equal cells;
* changing the seed or the workload invalidates the cache cleanly.
"""

import numpy as np
import pytest

from repro.experiments.figures import APPROACHES, run_figure
from repro.experiments.harness import Cell, GridRunner
from repro.experiments.parallel import CellCache, cell_key, workload_fingerprint
from repro.experiments.workloads import figure_workload
from repro.cluster.costs import CALIBRATED_COSTS
from repro.cluster.machine import minihpc
from repro.workloads.base import Workload


@pytest.fixture(scope="module")
def workload():
    return figure_workload("mandelbrot", "tiny")


def sweep(workload, jobs=1, cache_dir=None, seed=0, intras=("STATIC", "SS", "GSS")):
    runner = GridRunner(
        workload=workload,
        ppn=4,
        node_counts=(2, 4),
        seed=seed,
        jobs=jobs,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
    )
    cells = runner.sweep("GSS", intras, APPROACHES)
    return cells, runner.last_sweep_stats


# ---------------------------------------------------------------------------
# determinism: parallel == serial
# ---------------------------------------------------------------------------
def test_parallel_sweep_identical_to_serial(workload):
    serial, _ = sweep(workload, jobs=1)
    parallel, stats = sweep(workload, jobs=4)
    assert stats["simulated"] == len(parallel) == len(serial)
    for a, b in zip(serial, parallel):
        assert a.same_result(b), f"parallel cell diverged: {a} vs {b}"
        # everything except wall_seconds must be byte-identical
        da, db = a.to_dict(), b.to_dict()
        da.pop("wall_seconds"), db.pop("wall_seconds")
        assert da == db


def test_figure_parallel_identical_to_serial():
    """The CLI path: ``repro figure --id fig5a --jobs 4`` == serial."""
    serial = run_figure("fig5a", scale="tiny", node_counts=(2,), jobs=1)
    parallel = run_figure("fig5a", scale="tiny", node_counts=(2,), jobs=4)
    assert len(serial.cells) == len(parallel.cells) > 0
    for a, b in zip(serial.cells, parallel.cells):
        assert a.same_result(b)


# ---------------------------------------------------------------------------
# cache behaviour
# ---------------------------------------------------------------------------
def test_second_sweep_served_entirely_from_cache(workload, tmp_path):
    first, stats1 = sweep(workload, jobs=2, cache_dir=tmp_path)
    assert stats1["simulated"] == len(first)
    assert stats1["cache_hits"] == 0

    second, stats2 = sweep(workload, jobs=2, cache_dir=tmp_path)
    assert stats2["simulated"] == 0, "second sweep must run zero simulations"
    assert stats2["cache_hits"] == len(second)
    for a, b in zip(first, second):
        assert a.same_result(b)


def test_cache_hits_equal_across_serial_and_parallel(workload, tmp_path):
    first, _ = sweep(workload, jobs=1, cache_dir=tmp_path)
    cached, stats = sweep(workload, jobs=4, cache_dir=tmp_path)
    assert stats["simulated"] == 0
    for a, b in zip(first, cached):
        assert a.same_result(b)


def test_cache_invalidated_by_seed_change(workload, tmp_path):
    _, stats0 = sweep(workload, cache_dir=tmp_path, seed=0)
    _, stats1 = sweep(workload, cache_dir=tmp_path, seed=1)
    assert stats1["simulated"] == stats1["cells"], "new seed must miss the cache"


def test_cache_invalidated_by_workload_change(workload, tmp_path):
    _, stats0 = sweep(workload, cache_dir=tmp_path)
    rescaled = workload.scaled_to(workload.total_cost * 2.0)
    _, stats1 = sweep(rescaled, cache_dir=tmp_path)
    assert stats1["simulated"] == stats1["cells"], "new costs must miss the cache"


def test_cache_rejects_corrupt_entries(workload, tmp_path):
    cells, _ = sweep(workload, cache_dir=tmp_path)
    for path in tmp_path.glob("*.json"):
        path.write_text("{not json")
    again, stats = sweep(workload, cache_dir=tmp_path)
    assert stats["simulated"] == stats["cells"]
    for a, b in zip(cells, again):
        assert a.same_result(b)


# ---------------------------------------------------------------------------
# keys and serialization
# ---------------------------------------------------------------------------
def test_cell_dict_roundtrip():
    cell = Cell(
        approach="mpi+mpi",
        inter="GSS",
        intra="SS",
        nodes=4,
        time=1.25,
        overhead_fraction=0.1,
        idle_fraction=0.05,
        cov=0.3,
        n_events=12345,
        wall_seconds=0.7,
    )
    assert Cell.from_dict(cell.to_dict()) == cell


def test_workload_fingerprint_tracks_costs():
    a = Workload("w", np.array([1.0, 2.0, 3.0]))
    b = Workload("w", np.array([1.0, 2.0, 3.0]))
    c = Workload("w", np.array([1.0, 2.0, 3.0001]))
    d = Workload("w2", np.array([1.0, 2.0, 3.0]))
    assert workload_fingerprint(a) == workload_fingerprint(b)
    assert workload_fingerprint(a) != workload_fingerprint(c)
    assert workload_fingerprint(a) != workload_fingerprint(d)


def test_workload_fingerprint_tracks_dtype():
    """Byte-identical buffers of different dtypes are different cost
    vectors and must not collide under one cache key (PR-9 bugfix)."""

    class _CostsOnly:
        # duck-typed stand-in: Workload itself normalises to float64,
        # but workload_fingerprint's contract is over any (name, n,
        # costs) triple
        def __init__(self, costs):
            self.name, self.costs = "w", costs

        @property
        def n(self):
            return int(self.costs.size)

    floats = np.array([1.0, 2.0, 3.0], dtype=np.float64)
    reinterpreted = floats.view(np.int64)  # same bytes, different dtype
    assert floats.tobytes() == reinterpreted.tobytes()
    assert workload_fingerprint(_CostsOnly(floats)) != workload_fingerprint(
        _CostsOnly(reinterpreted)
    )


def test_cell_key_distinguishes_every_input(workload):
    fp = workload_fingerprint(workload)
    cluster = minihpc(2, 4)
    base = cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0)
    assert base == cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0)
    variants = [
        cell_key(fp, cluster, "mpi+openmp", "GSS", "SS", 2, 4, 0),
        cell_key(fp, cluster, "mpi+mpi", "TSS", "SS", 2, 4, 0),
        cell_key(fp, cluster, "mpi+mpi", "GSS", "STATIC", 2, 4, 0),
        cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 4, 4, 0),
        cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 2, 8, 0),
        cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 7),
        cell_key(fp, minihpc(4, 4), "mpi+mpi", "GSS", "SS", 2, 4, 0),
        # PR-5 inputs: the NUMA tier, cost-model overrides, and the
        # window-placement policy all change the simulated result, so
        # each must change the digest
        cell_key(
            fp, minihpc(2, 4, sockets_per_node=2, numa_per_socket=2),
            "mpi+mpi", "GSS", "SS", 2, 4, 0,
        ),
        cell_key(
            fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0,
            costs=CALIBRATED_COSTS,
        ),
        cell_key(
            fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0,
            placement="optimized",
        ),
        cell_key(
            fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0,
            placement={"global": 3},
        ),
    ]
    assert len({base, *variants}) == len(variants) + 1


def test_cell_cache_len_and_version_guard(workload, tmp_path):
    cache = CellCache(str(tmp_path))
    assert len(cache) == 0
    cells, _ = sweep(workload, cache_dir=tmp_path)
    cache = CellCache(str(tmp_path))
    assert len(cache) == len(cells)


# ---------------------------------------------------------------------------
# robustness: quarantine, worker-crash retry, fault-aware keys (PR 6)
# ---------------------------------------------------------------------------
def test_corrupt_cache_files_are_quarantined(workload, tmp_path):
    cells, _ = sweep(workload, cache_dir=tmp_path)
    n = len(list(tmp_path.glob("*.json")))
    for path in tmp_path.glob("*.json"):
        path.write_text("{not json")
    again, stats = sweep(workload, cache_dir=tmp_path)
    assert stats["simulated"] == stats["cells"]
    # every corrupt file was moved aside, not retried or deleted
    assert len(list(tmp_path.glob("*.json.corrupt"))) == n
    # ... and the re-simulated results were re-published cleanly
    third, stats3 = sweep(workload, cache_dir=tmp_path)
    assert stats3["cache_hits"] == len(third)
    for a, b in zip(cells, third):
        assert a.same_result(b)


def test_stale_version_files_are_quarantined(workload, tmp_path):
    import json

    sweep(workload, cache_dir=tmp_path)
    for path in tmp_path.glob("*.json"):
        payload = json.loads(path.read_text())
        payload["version"] = 1
        path.write_text(json.dumps(payload))
    cache = CellCache(str(tmp_path))
    fp = workload_fingerprint(workload)
    key = cell_key(fp, minihpc(2, 4), "mpi+mpi", "GSS", "STATIC", 2, 4, 0)
    assert cache.get(key) is None
    assert cache.quarantined + cache.misses >= 1


def test_schema_drift_within_version_is_quarantined(tmp_path):
    import json
    from repro.experiments.parallel import CACHE_FORMAT_VERSION

    cache = CellCache(str(tmp_path))
    key = "0" * 64
    with open(cache._path(key), "w", encoding="utf-8") as fh:
        json.dump(
            {"version": CACHE_FORMAT_VERSION, "cell": {"bogus_field": 1}}, fh
        )
    assert cache.get(key) is None
    assert cache.quarantined == 1
    assert not list(tmp_path.glob("*.json"))
    assert len(list(tmp_path.glob("*.json.corrupt"))) == 1


def test_cell_key_tracks_fault_model(workload):
    from repro.cluster.faults import NO_FAULTS, FaultModel

    fp = workload_fingerprint(workload)
    cluster = minihpc(2, 4)
    base = cell_key(fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0)
    # an inactive model produces the fault-free event stream, so it
    # must key identically to faults=None (cache sharing is correct)
    assert cell_key(
        fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0, faults=NO_FAULTS
    ) == base
    crashed = cell_key(
        fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0,
        faults=FaultModel.parse("crash:1@0.001"),
    )
    assert crashed != base
    assert crashed != cell_key(
        fp, cluster, "mpi+mpi", "GSS", "SS", 2, 4, 0,
        faults=FaultModel.parse("crash:1@0.002"),
    )


def test_run_cells_survives_worker_exceptions(workload, monkeypatch):
    """A worker that raises mid-sweep must not lose the sweep: the
    affected cells re-run inline and the results stay correct."""
    from repro.experiments import parallel

    specs = [("mpi+mpi", "GSS", intra, 2) for intra in ("STATIC", "SS", "GSS")]
    clusters = [minihpc(2, 4)] * len(specs)
    expected = parallel.run_cells(workload, specs, clusters, 4, 0, jobs=1)

    def explode(task):
        raise ValueError("simulated worker bug")

    monkeypatch.setattr(parallel, "_run_cell_in_worker", explode)
    got = parallel.run_cells(
        workload, specs, clusters, 4, 0, jobs=2, retry_backoff=0.01
    )
    assert len(got) == len(expected)
    for a, b in zip(expected, got):
        assert a.same_result(b)


def test_run_cells_survives_broken_process_pool(workload, monkeypatch):
    """An OOM-killed (os._exit) worker breaks the whole pool; the sweep
    must fall back to inline execution instead of raising."""
    import os

    from repro.experiments import parallel

    specs = [("mpi+mpi", "GSS", intra, 2) for intra in ("STATIC", "SS")]
    clusters = [minihpc(2, 4)] * len(specs)
    expected = parallel.run_cells(workload, specs, clusters, 4, 0, jobs=1)

    def die(task):
        os._exit(1)

    monkeypatch.setattr(parallel, "_run_cell_in_worker", die)
    got = parallel.run_cells(
        workload, specs, clusters, 4, 0, jobs=2, retry_backoff=0.01
    )
    for a, b in zip(expected, got):
        assert a.same_result(b)


def test_grid_runner_threads_faults(workload):
    from repro.cluster.faults import FaultModel

    runner = GridRunner(
        workload=workload,
        ppn=4,
        node_counts=(2,),
        faults=FaultModel.parse("crash:1@0.001"),
    )
    cells = runner.sweep("GSS", ("SS",), [("mpi+mpi", lambda intra: True)])
    assert all(cell.n_failures >= 1 for cell in cells)


def test_faulted_and_fault_free_sweeps_do_not_share_cache(workload, tmp_path):
    from repro.cluster.faults import FaultModel

    plain = GridRunner(
        workload=workload, ppn=4, node_counts=(2,),
        cache_dir=str(tmp_path),
    )
    plain_cells = plain.sweep("GSS", ("SS",), [("mpi+mpi", lambda i: True)])
    faulted = GridRunner(
        workload=workload, ppn=4, node_counts=(2,),
        cache_dir=str(tmp_path),
        faults=FaultModel.parse("crash:1@0.001"),
    )
    faulted_cells = faulted.sweep("GSS", ("SS",), [("mpi+mpi", lambda i: True)])
    assert faulted.last_sweep_stats["cache_hits"] == 0
    assert plain_cells[0].n_failures == 0
    assert faulted_cells[0].n_failures == 1


def test_fault_variant_smoke():
    from repro.experiments.figures import fault_variant, run_fault_variant

    spec = fault_variant("fig5a", n_nodes=2, ppn=4, crash_counts=(0, 2),
                         inters=("FAC2",))
    result = run_fault_variant(spec, scale="tiny")
    assert result.all_passed, result.to_text()
    assert "crash-stop" in result.to_text()
    assert result.degradation("FAC2", 2) >= -0.01
