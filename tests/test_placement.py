"""Penalty-aware queue placement: optimizer, threading, bit-exactness.

Three guarantees pinned here:

* **never worse** — for random depth-1..4 topologies (heterogeneous
  speeds, partial occupancy, random non-negative penalty knobs) the
  optimized plan's predicted objective never exceeds the leader
  plan's, and on symmetric topologies the decision rule moves nothing;
* **bit-exact default** — ``placement="leader"`` replays sampled
  configurations of *both* differential goldens unchanged (the knob's
  default cannot perturb any pre-existing result);
* **real wins move real windows** — on an asymmetric (heterogeneous
  speed) cluster the optimizer provably moves the global window off
  the slow node and the *measured* priced queue cost drops under
  ``CALIBRATED_COSTS``.
"""

import hashlib
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_hierarchical
from repro.cluster.costs import CALIBRATED_COSTS, DEFAULT_COSTS, MpiCosts
from repro.cluster.machine import heterogeneous, homogeneous
from repro.cluster.placement_opt import (
    GLOBAL_WINDOW,
    explicit_plan,
    leader_plan,
    predict_profile,
    resolve_placement,
    solve_placement,
)
from repro.core.hierarchy import HierarchicalSpec
from repro.workloads import uniform_workload

from dataclasses import replace as dc_replace


def _workload(n=240):
    return uniform_workload(n, low=5e-5, high=2e-3, seed=3)


def _asymmetric_cluster(numa=2):
    """2 nodes, node 0 slow — the leader global host is a poor home."""
    return heterogeneous(
        [8, 8], [0.6, 1.4], socket_counts=[2, 2], numa_counts=[numa, numa]
    )


# ---------------------------------------------------------------------------
# hypothesis: optimized <= leader on random topologies and stacks
# ---------------------------------------------------------------------------
topologies = st.tuples(
    st.integers(min_value=1, max_value=3),     # nodes
    st.sampled_from([1, 2]),                   # sockets/node
    st.sampled_from([1, 2]),                   # numa/socket
    st.integers(min_value=1, max_value=2),     # cores/numa
    st.sampled_from([(1.0,), (0.5, 2.0), (1.0, 0.25, 3.0)]),  # speed cycle
)

stacks = st.lists(
    st.sampled_from(["STATIC", "SS", "GSS", "FAC2", "TSS"]),
    min_size=1,
    max_size=4,
).map("+".join)

knob_values = st.floats(min_value=0.0, max_value=5e-6, allow_nan=False)


def _cluster_of(topo):
    nodes, sockets, numa, cpn, speeds = topo
    cores = sockets * numa * cpn
    return heterogeneous(
        core_counts=[cores] * nodes,
        core_speeds=[speeds[i % len(speeds)] for i in range(nodes)],
        socket_counts=[sockets] * nodes,
        numa_counts=[numa] * nodes,
    )


@given(topo=topologies, stack=stacks, knobs=st.tuples(knob_values, knob_values, knob_values))
@settings(max_examples=50, deadline=None)
def test_optimized_objective_never_exceeds_leader(topo, stack, knobs):
    cluster = _cluster_of(topo)
    costs = DEFAULT_COSTS.with_overrides(
        **{
            "mpi.remote_numa_load_penalty": knobs[0],
            "mpi.remote_numa_atomic_penalty": knobs[1],
            "mpi.cross_socket_penalty": knobs[2],
        }
    )
    spec = HierarchicalSpec.parse(stack)
    optimized = solve_placement(spec, 500, cluster, costs=costs)
    leader = leader_plan(spec, 500, cluster, costs=costs)
    assert optimized.objective <= leader.objective + 1e-15
    # every moved window must be a *strict* predicted improvement
    if not optimized.moved:
        assert optimized.homes == leader.homes
        assert optimized.global_host == 0


@given(topo=topologies, stack=stacks)
@settings(max_examples=30, deadline=None)
def test_symmetric_topologies_keep_leader_homes(topo, stack):
    """With one common speed the machine is symmetric under block
    placement, so the decision rule must not move anything."""
    nodes, sockets, numa, cpn, _speeds = topo
    cluster = homogeneous(
        nodes, sockets * numa * cpn, sockets_per_node=sockets,
        numa_per_socket=numa,
    )
    plan = solve_placement(
        HierarchicalSpec.parse(stack), 500, cluster, costs=CALIBRATED_COSTS
    )
    assert plan.moved == ()
    assert plan.global_host == 0


def test_pinned_root_profiles_tier_traffic_and_validates_explicit_maps():
    """A pinned STATIC root never touches the global window, but each
    node still receives its chunk — tier queues have real traffic, and
    every window the model builds must exist in the profile so explicit
    maps for it validate (regression: zero deposits used to prune the
    subtree)."""
    cluster = _asymmetric_cluster(numa=1)
    spec = HierarchicalSpec.parse("STATIC+FAC2+SS")
    profile = predict_profile(spec, 240, cluster, ppn=8)
    assert sum(profile.window(GLOBAL_WINDOW).atomics.values()) == 0
    assert sum(profile.window(0).atomics.values()) > 0
    assert {(0, 0), (1, 1)} <= {w.key for w in profile.windows}
    wl = _workload()
    result = run_hierarchical(
        wl, cluster, inter="STATIC+FAC2+SS", approach="mpi+mpi", ppn=8,
        seed=0, placement={(1, 1): 12},
    )
    assert result.counters["window_homes"][(1, 1)] == 12


def test_profile_covers_every_window_of_the_tree():
    cluster = _asymmetric_cluster()
    profile = predict_profile(
        HierarchicalSpec.parse("GSS+FAC2+FAC2+SS"), 500, cluster, ppn=8
    )
    keys = {w.key for w in profile.windows}
    assert GLOBAL_WINDOW in keys
    assert {0, 1} <= keys                       # node windows
    assert {(0, 0), (1, 1)} <= keys             # socket windows
    assert {(0, 0, 0), (1, 1, 1)} <= keys       # NUMA windows
    # faster node attracts proportionally more predicted global fetches
    global_profile = profile.window(GLOBAL_WINDOW)
    node0 = sum(v for r, v in global_profile.atomics.items() if r < 8)
    node1 = sum(v for r, v in global_profile.atomics.items() if r >= 8)
    assert node1 == pytest.approx(node0 * (1.4 / 0.6))


# ---------------------------------------------------------------------------
# bit-exactness: placement="leader" replays both goldens unchanged
# ---------------------------------------------------------------------------
GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

SEED_CLUSTERS = {
    "homog-2x4": lambda: homogeneous(2, 4),
    "homog-3x4": lambda: homogeneous(3, 4),
    "hetero-2": lambda: heterogeneous([4, 4], [1.0, 1.5]),
}
DEPTH_CLUSTERS = {
    "flat-2x8": lambda: homogeneous(2, 8),
    "sock-2x8s2": lambda: homogeneous(2, 8, sockets_per_node=2),
    "numa-2x8s2m2": lambda: homogeneous(
        2, 8, sockets_per_node=2, numa_per_socket=2
    ),
    "numa-1x16s4m2": lambda: homogeneous(
        1, 16, sockets_per_node=4, numa_per_socket=2
    ),
}


def _chunk_digest(result):
    payload = ";".join(
        f"{c.step},{c.start},{c.size},{c.pe}" for c in result.chunks
    ) + "|" + ";".join(
        f"{c.step},{c.start},{c.size},{c.pe}" for c in result.subchunks
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def _level_chunk_digest(result):
    payload = "|".join(
        ";".join(f"{c.step},{c.start},{c.size},{c.pe}" for c in level)
        for level in result.level_chunks
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def _sample(golden, predicate, k):
    keys = sorted(key for key in golden if predicate(key))
    step = max(1, len(keys) // k)
    return keys[::step][:k]


def test_explicit_leader_matches_seed_golden_bit_for_bit():
    with open(os.path.join(GOLDEN_DIR, "seed_runresults.json")) as fh:
        golden = json.load(fh)
    wl = _workload()
    for key in _sample(golden, lambda k: k.startswith("mpi+mpi/"), 8):
        approach, inter, intra, cluster_id, ppn, seed = key.split("/")
        want = golden[key]
        result = run_hierarchical(
            wl,
            SEED_CLUSTERS[cluster_id](),
            inter=inter,
            intra=intra,
            approach=approach,
            ppn=int(ppn),
            seed=int(seed),
            placement="leader",
        )
        assert result.parallel_time.hex() == want["parallel_time"], key
        assert result.n_events == want["n_events"], key
        assert _chunk_digest(result) == want["chunk_digest"], key


def test_explicit_leader_matches_depth_golden_bit_for_bit():
    with open(os.path.join(GOLDEN_DIR, "depth_runresults.json")) as fh:
        golden = json.load(fh)
    wl = _workload()
    for key in _sample(golden, lambda k: k.startswith("mpi+mpi/"), 6):
        approach, stack, cluster_id, ppn, seed = key.split("/")
        want = golden[key]
        result = run_hierarchical(
            wl,
            DEPTH_CLUSTERS[cluster_id](),
            inter=stack,
            approach=approach,
            ppn=int(ppn),
            seed=int(seed),
            placement="leader",
        )
        assert result.parallel_time.hex() == want["parallel_time"], key
        assert result.n_events == want["n_events"], key
        assert _level_chunk_digest(result) == want["chunk_digest"], key


def test_optimized_on_symmetric_topology_is_bit_exact_too():
    """When the decision rule moves nothing, threading the (identical)
    homes through the windows must not change a single event."""
    wl = _workload()
    cluster = homogeneous(2, 8, sockets_per_node=2, numa_per_socket=2)
    base = run_hierarchical(
        wl, cluster, inter="GSS+FAC2+SS", approach="mpi+mpi", ppn=8, seed=0
    )
    optimized = run_hierarchical(
        wl, cluster, inter="GSS+FAC2+SS", approach="mpi+mpi", ppn=8, seed=0,
        placement="optimized",
    )
    assert optimized.parallel_time == base.parallel_time
    assert optimized.n_events == base.n_events
    assert optimized.counters["placement"] == "optimized"


# ---------------------------------------------------------------------------
# asymmetric-topology regression: the optimizer provably moves a window
# ---------------------------------------------------------------------------
def test_optimizer_moves_global_window_off_the_slow_node():
    cluster = _asymmetric_cluster()
    spec = HierarchicalSpec.parse("FAC2+FAC2+FAC2+SS")
    plan = solve_placement(spec, 240, cluster, ppn=8, costs=CALIBRATED_COSTS)
    assert GLOBAL_WINDOW in plan.moved
    assert plan.global_host >= 8  # a rank of the fast node
    assert plan.objective < leader_plan(
        spec, 240, cluster, ppn=8, costs=CALIBRATED_COSTS
    ).objective


def test_optimized_reduces_measured_priced_cost_on_asymmetric_cluster():
    wl = _workload()
    cluster = _asymmetric_cluster()
    common = dict(
        inter="GSS+FAC2+FAC2+STATIC", approach="mpi+mpi", ppn=8, seed=0,
        costs=CALIBRATED_COSTS,
    )
    lead = run_hierarchical(wl, cluster, **common)
    opt = run_hierarchical(wl, cluster, **common, placement="optimized")
    assert opt.counters["window_homes"]["global"] >= 8
    assert lead.counters["window_homes"]["global"] == 0
    assert (
        opt.counters["placement_cost_s"] < lead.counters["placement_cost_s"]
    )
    # both still execute the full loop correctly (RunResult verifies)
    assert opt.parallel_time > 0


def test_placement_variant_sweep_passes_on_asymmetric_topology():
    from repro.experiments.figures import placement_variant, run_placement_variant

    spec = placement_variant("fig5a", node_counts=(2,))
    spec = dc_replace(spec, intras=(spec.intras[0],))  # one panel suffices
    result = run_placement_variant(spec, scale="tiny")
    assert result.all_passed, result.to_text()
    text = result.to_text()
    assert "optimized" in text and "leader" in text


# ---------------------------------------------------------------------------
# explicit maps, validation, and the unsupported-model guard
# ---------------------------------------------------------------------------
def test_explicit_map_pins_window_homes():
    wl = _workload()
    cluster = _asymmetric_cluster(numa=1)
    result = run_hierarchical(
        wl, cluster, inter="FAC2+SS", approach="mpi+mpi", ppn=8, seed=0,
        placement={"global": 8, 1: 12},
    )
    homes = result.counters["window_homes"]
    assert homes["global"] == 8
    assert homes[1] == 12
    assert homes[0] == 0  # unmapped windows keep their leader
    assert result.counters["placement"] == "explicit"


def test_explicit_map_rejects_non_members_and_unknown_windows():
    cluster = _asymmetric_cluster(numa=1)
    spec = HierarchicalSpec.parse("FAC2+SS")
    with pytest.raises(ValueError, match="not a member"):
        explicit_plan({0: 12}, spec, 240, cluster, ppn=8)
    with pytest.raises(ValueError, match="unknown window"):
        explicit_plan({(5, 1): 0}, spec, 240, cluster, ppn=8)
    with pytest.raises(ValueError, match="outside world"):
        explicit_plan({"global": 99}, spec, 240, cluster, ppn=8)


def test_unknown_placement_values_raise():
    cluster = _asymmetric_cluster(numa=1)
    spec = HierarchicalSpec.parse("FAC2+SS")
    with pytest.raises(ValueError, match="unknown placement"):
        resolve_placement("centroid", spec, 240, cluster)
    with pytest.raises(TypeError, match="string or mapping"):
        resolve_placement(42, spec, 240, cluster)


@pytest.mark.parametrize("approach", ["mpi+openmp", "flat-mpi", "master-worker"])
def test_non_mpimpi_models_reject_optimized_placement(approach):
    wl = _workload()
    with pytest.raises(ValueError, match="tier leaders only"):
        run_hierarchical(
            wl, homogeneous(2, 4), inter="GSS", intra="STATIC",
            approach=approach, ppn=4, seed=0, placement="optimized",
        )


def test_leader_objective_is_priced_with_zero_knobs_too():
    """Under distance-blind costs only the global window costs anything,
    and moving it still helps on asymmetric clusters (network vs local
    atomics) — the objective is not identically zero."""
    cluster = _asymmetric_cluster(numa=1)
    spec = HierarchicalSpec.parse("FAC2+SS")
    lead = leader_plan(spec, 500, cluster, ppn=8, costs=DEFAULT_COSTS)
    opt = solve_placement(spec, 500, cluster, ppn=8, costs=DEFAULT_COSTS)
    assert lead.objective > 0
    assert opt.objective < lead.objective


# ---------------------------------------------------------------------------
# native runner: the placement knob on the priced lock ledger
# ---------------------------------------------------------------------------
def test_native_placement_knob_reports_homes_and_prices_ledger():
    from repro.core.hierarchy import HierarchicalSpec as Spec
    from repro.native import NativeRunner
    from repro.workloads import mandelbrot_workload

    wl = mandelbrot_workload(width=24, height=24, max_iter=32)
    cluster = homogeneous(1, 8, sockets_per_node=2, numa_per_socket=2)
    spec = Spec.parse("GSS+FAC2+SS")
    runner = NativeRunner(wl, n_workers=8)
    leader = runner.run_hierarchical(
        spec, topology=cluster, costs=CALIBRATED_COSTS
    )
    assert leader.group_homes is not None
    assert leader.group_homes[(0, 0)] == (0, 0, 0)  # leader first-touch
    optimized = NativeRunner(wl, n_workers=8).run_hierarchical(
        spec, topology=cluster, costs=CALIBRATED_COSTS, placement="optimized"
    )
    # symmetric machine: the decision rule keeps every leader home
    assert optimized.group_homes == leader.group_homes
    leader.verify(wl.n)
    optimized.verify(wl.n)


def test_native_explicit_home_map_changes_the_priced_ledger():
    from repro.core.hierarchy import HierarchicalSpec as Spec
    from repro.native import NativeRunner
    from repro.workloads import mandelbrot_workload

    wl = mandelbrot_workload(width=24, height=24, max_iter=32)
    cluster = homogeneous(1, 8, sockets_per_node=2, numa_per_socket=2)
    spec = Spec.parse("GSS+SS")
    base = NativeRunner(wl, n_workers=8).run_hierarchical(
        spec, topology=cluster, costs=CALIBRATED_COSTS
    )
    # move the node queue's home by worker index: same tier structure,
    # different distances, so the ledger prices differently in general
    moved = NativeRunner(wl, n_workers=8).run_hierarchical(
        spec, topology=cluster, costs=CALIBRATED_COSTS,
        placement={(0,): 6},
    )
    assert moved.group_homes[(0,)] == (0, 1, 1)
    assert base.group_homes[(0,)] == (0, 0, 0)
    with pytest.raises(ValueError, match="not a member"):
        NativeRunner(wl, n_workers=4).run_hierarchical(
            spec, topology=cluster, costs=CALIBRATED_COSTS,
            placement={(0,): 7},
        )
    # unknown group keys must raise, exactly like the simulator's
    # explicit_plan — not be silently dropped
    with pytest.raises(ValueError, match="unknown groups"):
        NativeRunner(wl, n_workers=8).run_hierarchical(
            spec, topology=cluster, costs=CALIBRATED_COSTS,
            placement={(0, 9): 0},
        )


def test_native_placement_requires_topology():
    from repro.core.hierarchy import HierarchicalSpec as Spec
    from repro.native import NativeRunner
    from repro.workloads import mandelbrot_workload

    wl = mandelbrot_workload(width=16, height=16, max_iter=16)
    with pytest.raises(TypeError, match="requires topology"):
        NativeRunner(wl, n_workers=4).run_hierarchical(
            Spec.parse("GSS+SS"), n_groups=2, placement="optimized"
        )


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
def test_cli_placement_and_costs_flags(capsys):
    from repro.cli import main

    code = main(
        [
            "run", "--techniques", "GSS+FAC2+STATIC", "--nodes", "2",
            "--ppn", "4", "--sockets", "2", "--scale", "tiny",
            "--placement", "optimized", "--costs", "calibrated",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "placement: optimized" in out
    assert "priced queue traffic" in out


def test_cli_numa_costs_alias_conflicts_with_costs(capsys):
    from repro.cli import main

    code = main(
        [
            "run", "--techniques", "GSS+STATIC", "--nodes", "2",
            "--ppn", "4", "--scale", "tiny",
            "--numa-costs", "--costs", "calibrated",
        ]
    )
    assert code == 2
    assert "conflicts" in capsys.readouterr().out
