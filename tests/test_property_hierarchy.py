"""Property-based tests for arbitrary-depth hierarchical scheduling.

For random level stacks (depth 1-4), random techniques per level,
random topologies (nodes, sockets, NUMA domains, ppn) and random loop
sizes, the depth-generalised models must always:

(a) schedule every iteration exactly once (coverage, no overlap);
(b) hand out only positive chunk sizes at every level;
(c) keep every level's sub-chunks inside the parent chunk's
    ``[start, start + size)`` range (containment);
(d) be bit-deterministic given the seed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_hierarchical
from repro.cluster.machine import homogeneous
from repro.core.chunking import verify_schedule
from repro.workloads import Workload

#: techniques usable at any level with no extra parameters
TECHNIQUES = ["STATIC", "SS", "GSS", "TSS", "FAC2", "mFSC", "TFSS"]
#: runtime-adaptive techniques (also parameter-free)
ADAPTIVE = ["AWF-B", "AWF-C", "AWF-D", "AWF-E", "AF"]

workloads = st.builds(
    lambda costs: Workload("prop", np.asarray(costs)),
    st.lists(
        st.floats(min_value=1e-6, max_value=5e-3, allow_nan=False),
        min_size=1,
        max_size=300,
    ),
)

stacks = st.lists(
    st.sampled_from(TECHNIQUES), min_size=1, max_size=4
)

adaptive_stacks = st.lists(
    st.sampled_from(TECHNIQUES + ADAPTIVE), min_size=2, max_size=4
).filter(lambda stack: any(t in ADAPTIVE for t in stack))


def check_level_invariants(result, n: int) -> None:
    """Coverage at the leaf; positivity + containment at every level."""
    verify_schedule(result.subchunks, n)
    for chunks in result.level_chunks:
        assert all(c.size > 0 for c in chunks)
    for upper, lower in zip(result.level_chunks, result.level_chunks[1:]):
        spans = sorted((u.start, u.end) for u in upper)
        for chunk in lower:
            assert any(
                start <= chunk.start and chunk.end <= end
                for start, end in spans
            ), f"sub-chunk {chunk} escapes every parent range"


@given(
    wl=workloads,
    stack=stacks,
    nodes=st.integers(min_value=1, max_value=3),
    sockets=st.sampled_from([1, 2, 4]),
    numa=st.sampled_from([1, 2]),
    ppn=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=80, deadline=None)
def test_mpi_mpi_any_depth_covers_and_nests(
    wl, stack, nodes, sockets, numa, ppn, seed
):
    result = run_hierarchical(
        wl,
        homogeneous(nodes, 8, sockets_per_node=sockets, numa_per_socket=numa),
        inter="+".join(stack), approach="mpi+mpi", ppn=ppn, seed=seed,
    )
    check_level_invariants(result, wl.n)
    assert result.parallel_time >= 0
    assert len(result.level_chunks) == len(stack)


@given(
    wl=workloads,
    stack=adaptive_stacks,
    nodes=st.integers(min_value=1, max_value=3),
    sockets=st.sampled_from([1, 2]),
    numa=st.sampled_from([1, 2]),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_mpi_mpi_adaptive_any_level_covers(wl, stack, nodes, sockets, numa, seed):
    """AWF-*/AF are valid at any level of the stack, not just the root."""
    result = run_hierarchical(
        wl,
        homogeneous(nodes, 4, sockets_per_node=sockets, numa_per_socket=numa),
        inter="+".join(stack), approach="mpi+mpi", ppn=4, seed=seed,
    )
    check_level_invariants(result, wl.n)


@given(
    wl=workloads,
    inter=st.sampled_from(TECHNIQUES),
    mid=st.sampled_from(TECHNIQUES),
    leaf=st.sampled_from(["STATIC", "SS", "GSS", "TSS", "FAC2"]),
    nodes=st.integers(min_value=1, max_value=3),
    sockets=st.sampled_from([1, 2]),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_mpi_openmp_three_level_covers_and_nests(
    wl, inter, mid, leaf, nodes, sockets, seed
):
    result = run_hierarchical(
        wl, homogeneous(nodes, 4, sockets_per_node=sockets),
        inter=f"{inter}+{mid}+{leaf}", approach="mpi+openmp", ppn=4, seed=seed,
    )
    check_level_invariants(result, wl.n)
    assert len(result.level_chunks) == 3


@given(
    wl=workloads,
    inter=st.sampled_from(TECHNIQUES),
    mid=st.sampled_from(TECHNIQUES),
    numa_mid=st.sampled_from(TECHNIQUES),
    leaf=st.sampled_from(["STATIC", "SS", "GSS", "TSS", "FAC2"]),
    nodes=st.integers(min_value=1, max_value=2),
    sockets=st.sampled_from([1, 2]),
    numa=st.sampled_from([1, 2]),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_mpi_openmp_four_level_covers_and_nests(
    wl, inter, mid, numa_mid, leaf, nodes, sockets, numa, seed
):
    """Depth-4 stacks nest NUMA teams inside socket teams."""
    result = run_hierarchical(
        wl,
        homogeneous(nodes, 4, sockets_per_node=sockets, numa_per_socket=numa),
        inter=f"{inter}+{mid}+{numa_mid}+{leaf}", approach="mpi+openmp",
        ppn=4, seed=seed,
    )
    check_level_invariants(result, wl.n)
    assert len(result.level_chunks) == 4


@given(
    wl=workloads,
    stack=stacks,
    sockets=st.sampled_from([1, 2]),
    numa=st.sampled_from([1, 2]),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_any_depth_bit_deterministic(wl, stack, sockets, numa, seed):
    def go():
        return run_hierarchical(
            wl,
            homogeneous(2, 4, sockets_per_node=sockets, numa_per_socket=numa),
            inter="+".join(stack), approach="mpi+mpi", ppn=4, seed=seed,
        )

    a, b = go(), go()
    assert a.parallel_time == b.parallel_time
    assert a.n_events == b.n_events
    for la, lb in zip(a.level_chunks, b.level_chunks):
        assert [(c.start, c.size, c.pe) for c in la] == [
            (c.start, c.size, c.pe) for c in lb
        ]


@given(
    wl=workloads,
    stack=st.lists(st.sampled_from(TECHNIQUES), min_size=2, max_size=2),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_depth_two_stack_equals_classic_pair(wl, stack, seed):
    """``of_levels(X, Y)`` runs identically to the classic ``of(X, Y)``."""
    joined = run_hierarchical(
        wl, homogeneous(2, 4), inter="+".join(stack),
        approach="mpi+mpi", ppn=4, seed=seed,
    )
    classic = run_hierarchical(
        wl, homogeneous(2, 4), inter=stack[0], intra=stack[1],
        approach="mpi+mpi", ppn=4, seed=seed,
    )
    assert joined.parallel_time == classic.parallel_time
    assert joined.n_events == classic.n_events
    assert [c.start for c in joined.subchunks] == [
        c.start for c in classic.subchunks
    ]
