"""Property-based tests for the execution models and the simulator.

Randomised cluster shapes, workload distributions, technique pairs and
seeds — the models must always (a) terminate, (b) execute every
iteration exactly once, and (c) be bit-deterministic given the seed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_hierarchical
from repro.cluster.machine import homogeneous
from repro.core.chunking import verify_schedule
from repro.sim import Compute, Simulator
from repro.sim.resources import Barrier, Lock
from repro.workloads import Workload

INTERS = ["STATIC", "SS", "GSS", "TSS", "FAC2", "mFSC", "TFSS"]
INTRAS = ["STATIC", "SS", "GSS", "TSS", "FAC2"]

workloads = st.builds(
    lambda costs: Workload("prop", np.asarray(costs)),
    st.lists(
        st.floats(min_value=1e-6, max_value=5e-3, allow_nan=False),
        min_size=1,
        max_size=400,
    ),
)


@given(
    wl=workloads,
    inter=st.sampled_from(INTERS),
    intra=st.sampled_from(INTRAS),
    nodes=st.integers(min_value=1, max_value=4),
    ppn=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=60, deadline=None)
def test_mpi_mpi_always_covers(wl, inter, intra, nodes, ppn, seed):
    result = run_hierarchical(
        wl, homogeneous(nodes, 8), inter=inter, intra=intra,
        approach="mpi+mpi", ppn=ppn, seed=seed,
    )
    verify_schedule(result.subchunks, wl.n)
    assert result.parallel_time >= 0


@given(
    wl=workloads,
    inter=st.sampled_from(INTERS),
    intra=st.sampled_from(["STATIC", "SS", "GSS"]),
    nodes=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=40, deadline=None)
def test_mpi_openmp_always_covers(wl, inter, intra, nodes, seed):
    result = run_hierarchical(
        wl, homogeneous(nodes, 4), inter=inter, intra=intra,
        approach="mpi+openmp", ppn=4, seed=seed,
    )
    verify_schedule(result.subchunks, wl.n)


@given(
    wl=workloads,
    inter=st.sampled_from(INTERS),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=40, deadline=None)
def test_flat_and_master_worker_always_cover(wl, inter, seed):
    for approach in ("flat-mpi", "master-worker"):
        result = run_hierarchical(
            wl, homogeneous(2, 4), inter=inter, intra="SS",
            approach=approach, ppn=4, seed=seed,
        )
        verify_schedule(result.subchunks, wl.n)


@given(
    wl=workloads,
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_runs_bit_deterministic(wl, seed):
    a = run_hierarchical(wl, homogeneous(2, 4), "GSS", "FAC2",
                         approach="mpi+mpi", ppn=4, seed=seed)
    b = run_hierarchical(wl, homogeneous(2, 4), "GSS", "FAC2",
                         approach="mpi+mpi", ppn=4, seed=seed)
    assert a.parallel_time == b.parallel_time
    assert a.n_events == b.n_events
    assert [c.start for c in a.subchunks] == [c.start for c in b.subchunks]


# ---------------------------------------------------------------------------
# simulator-level properties
# ---------------------------------------------------------------------------


@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_engine_time_is_max_of_process_spans(durations):
    sim = Simulator()

    def proc(d):
        yield Compute(d)

    for d in durations:
        sim.spawn(proc(d))
    assert sim.run() == max(durations)


@given(
    n_procs=st.integers(min_value=1, max_value=20),
    n_rounds=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=60, deadline=None)
def test_lock_serialises_exactly(n_procs, n_rounds):
    """With a 1-unit critical section per acquisition, total elapsed
    time is exactly n_procs * n_rounds (perfect serialisation)."""
    sim = Simulator()
    lock = Lock(sim)

    def proc():
        for _ in range(n_rounds):
            yield from lock.acquire()
            yield Compute(1.0)
            lock.release()

    for _ in range(n_procs):
        sim.spawn(proc())
    assert sim.run() == n_procs * n_rounds
    assert lock.n_acquisitions == n_procs * n_rounds


@given(
    parties=st.integers(min_value=1, max_value=16),
    rounds=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_barrier_generations_count(parties, rounds):
    sim = Simulator()
    bar = Barrier(sim, parties)

    def proc(speed):
        for _ in range(rounds):
            yield Compute(speed)
            yield from bar.wait()

    for i in range(parties):
        sim.spawn(proc(0.5 + i * 0.1))
    sim.run()
    assert len(bar.generations) == rounds
    # generations are strictly increasing in time
    assert all(a < b for a, b in zip(bar.generations, bar.generations[1:]))
