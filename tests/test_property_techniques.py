"""Property-based tests (hypothesis) for the DLS technique calculators.

The invariants here are the load-bearing guarantees of the whole
system: whatever the loop size, PE count, profile, weights, or seed,
every technique must produce a positive, exactly-covering, terminating
chunk schedule.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IterationProfile, get_technique, unroll, verify_schedule
from repro.core.technique_base import ceil_div
from repro.core.techniques import TECHNIQUES

DETERMINISTIC = sorted(
    name for name, t in TECHNIQUES.items()
    if not t.pe_dependent and not t.adaptive
)
ALL = sorted(TECHNIQUES)

sizes = st.integers(min_value=0, max_value=5000)
pes = st.integers(min_value=1, max_value=64)
profiles = st.builds(
    IterationProfile,
    mu=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    sigma=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    h=st.floats(min_value=1e-9, max_value=1e-3, allow_nan=False),
)


def make(name, n, p, profile=None, seed=0):
    return get_technique(name).make(
        n,
        p,
        profile=profile or IterationProfile(mu=1e-3, sigma=3e-4),
        weights=None,
        rng=np.random.default_rng(seed),
    )


@given(name=st.sampled_from(ALL), n=sizes, p=pes)
@settings(max_examples=300, deadline=None)
def test_every_technique_covers_any_loop(name, n, p):
    calc = make(name, n, p)
    chunks = unroll(calc)
    verify_schedule(chunks, n)


@given(name=st.sampled_from(DETERMINISTIC), n=sizes, p=pes)
@settings(max_examples=200, deadline=None)
def test_deterministic_sequence_sums_to_n(name, n, p):
    calc = make(name, n, p)
    seq = calc.sequence()
    assert sum(seq) == n
    assert all(s >= 1 for s in seq)


@given(name=st.sampled_from(DETERMINISTIC), n=sizes, p=pes)
@settings(max_examples=200, deadline=None)
def test_start_at_equals_prefix_sums(name, n, p):
    calc = make(name, n, p)
    seq = calc.sequence()
    acc = 0
    for step, size in enumerate(seq):
        assert calc.start_at(step) == acc
        acc += size


@given(name=st.sampled_from(DETERMINISTIC), n=sizes, p=pes)
@settings(max_examples=150, deadline=None)
def test_size_at_is_idempotent_for_deterministic(name, n, p):
    calc = make(name, n, p)
    total = calc.total_steps()
    for step in range(0, min(total, 25)):
        first = calc.size_at(step)
        assert calc.size_at(step) == first


@given(n=st.integers(min_value=1, max_value=100000), p=pes)
@settings(max_examples=200, deadline=None)
def test_gss_first_chunk_and_monotonicity(n, p):
    seq = make("GSS", n, p).sequence()
    assert seq[0] == ceil_div(n, p)
    assert all(a >= b for a, b in zip(seq, seq[1:]))


@given(n=st.integers(min_value=1, max_value=100000), p=pes)
@settings(max_examples=200, deadline=None)
def test_fac2_batches_are_uniform_and_halving(n, p):
    seq = make("FAC2", n, p).sequence()
    # within every full batch of p chunks all sizes are equal
    for start in range(0, max(0, len(seq) - p), p):
        batch = seq[start : start + p]
        assert len(set(batch)) == 1


@given(n=st.integers(min_value=2, max_value=100000), p=pes)
@settings(max_examples=200, deadline=None)
def test_tss_linear_and_bounded(n, p):
    seq = make("TSS", n, p).sequence()
    first = ceil_div(n, 2 * p)
    assert seq[0] <= max(first, 1)
    assert min(seq) >= 1
    assert all(a >= b for a, b in zip(seq, seq[1:-1] or seq[1:]))


@given(n=sizes, p=pes, profile=profiles)
@settings(max_examples=150, deadline=None)
def test_fac_robust_to_any_profile(n, p, profile):
    calc = get_technique("FAC").make(n, p, profile=profile)
    verify_schedule(unroll(calc), n)


@given(n=sizes, p=pes, profile=profiles)
@settings(max_examples=150, deadline=None)
def test_fsc_and_tap_robust_to_any_profile(n, p, profile):
    for name in ("FSC", "TAP"):
        calc = get_technique(name).make(n, p, profile=profile)
        verify_schedule(unroll(calc), n)


@given(
    n=sizes,
    p=st.integers(min_value=1, max_value=16),
    raw=st.lists(
        st.floats(min_value=0.05, max_value=20.0, allow_nan=False),
        min_size=16,
        max_size=16,
    ),
)
@settings(max_examples=150, deadline=None)
def test_wf_covers_under_arbitrary_weights(n, p, raw):
    calc = get_technique("WF").make(n, p, weights=raw[:p])
    verify_schedule(unroll(calc), n)


@given(n=sizes, p=pes, seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=150, deadline=None)
def test_rnd_covers_for_any_seed(n, p, seed):
    calc = get_technique("RND").make(n, p, seed=seed)
    verify_schedule(unroll(calc), n)


@given(
    name=st.sampled_from(["AWF-B", "AWF-C", "AWF-D", "AWF-E", "AF"]),
    n=sizes,
    p=st.integers(min_value=1, max_value=16),
    times=st.lists(
        st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
        min_size=4,
        max_size=4,
    ),
)
@settings(max_examples=150, deadline=None)
def test_adaptive_cover_under_arbitrary_feedback(name, n, p, times):
    """Feeding adversarial timings must never break coverage."""
    calc = get_technique(name).make(n, p)
    chunks = []
    start = 0
    step = 0
    while start < n:
        pe = step % p
        size = calc.size_at(step, pe=pe)
        assert size >= 1
        size = min(size, n - start)
        chunks.append((start, size))
        calc.record(pe, size, compute_time=times[step % len(times)] * size,
                    overhead_time=times[(step + 1) % len(times)])
        start += size
        step += 1
    # coverage by construction; check contiguity
    cursor = 0
    for s, z in chunks:
        assert s == cursor
        cursor += z
    assert cursor == n
