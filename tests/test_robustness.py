"""Robustness & failure-injection tests.

Hostile noise, degenerate cluster shapes, pathological workloads, and
misuse of the simulated runtimes: the library must either work
correctly or fail loudly — never hang or silently drop iterations.
"""

import numpy as np
import pytest

from repro import run_hierarchical
from repro.cluster.costs import CostModel
from repro.cluster.machine import heterogeneous, homogeneous
from repro.cluster.noise import HARSH_NOISE, NoiseModel
from repro.core.chunking import verify_schedule
from repro.models.mpi_mpi import _LocalQueue, _QueuedChunk
from repro.sim import ProcessFailure, Simulator
from repro.smpi import MpiWorld
from repro.workloads import (
    Workload,
    banded_workload,
    constant_workload,
    exponential_workload,
)


# ---------------------------------------------------------------------------
# noise robustness
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("approach", ["mpi+mpi", "mpi+openmp"])
def test_harsh_noise_preserves_correctness(approach):
    wl = exponential_workload(500, mu=1e-3, seed=1)
    result = run_hierarchical(
        wl, homogeneous(2, 4), "GSS", "GSS", approach=approach, ppn=4,
        noise=HARSH_NOISE, seed=3,
    )
    verify_schedule(result.subchunks, wl.n)


def test_extreme_jitter_still_terminates():
    noise = NoiseModel(per_core_sigma=0.3, jitter_sigma=0.8, seed_tag="x")
    wl = constant_workload(300, cost=1e-3)
    result = run_hierarchical(
        wl, homogeneous(2, 4), "FAC2", "SS", approach="mpi+mpi", ppn=4,
        noise=noise, seed=4,
    )
    verify_schedule(result.subchunks, wl.n)
    assert result.parallel_time > 0


def test_dynamic_techniques_absorb_noise_better_than_static():
    """The paper's premise: under systemic variation, DLS beats SLS."""
    noise = NoiseModel(per_core_sigma=0.15, jitter_sigma=0.3, seed_tag="p")
    wl = constant_workload(2048, cost=1e-3)
    cluster = homogeneous(2, 8)
    static = run_hierarchical(
        wl, cluster, "STATIC", "STATIC", approach="mpi+mpi", ppn=8,
        noise=noise, seed=5, collect_chunks=False,
    )
    dynamic = run_hierarchical(
        wl, cluster, "FAC2", "GSS", approach="mpi+mpi", ppn=8,
        noise=noise, seed=5, collect_chunks=False,
    )
    assert dynamic.parallel_time < static.parallel_time
    assert dynamic.metrics.cov_finish < static.metrics.cov_finish


# ---------------------------------------------------------------------------
# pathological workloads
# ---------------------------------------------------------------------------


def test_zero_cost_iterations_complete_instantly():
    wl = Workload("zero", np.zeros(64))
    result = run_hierarchical(
        wl, homogeneous(2, 4), "GSS", "SS", approach="mpi+mpi", ppn=4,
    )
    verify_schedule(result.subchunks, 64)
    # only scheduling overhead remains
    assert result.parallel_time < 0.05


def test_single_giant_iteration_bounds_parallel_time():
    costs = np.full(256, 1e-4)
    costs[100] = 1.0  # one iteration dominates everything
    wl = Workload("spike", costs)
    from repro.cluster.noise import NO_NOISE

    result = run_hierarchical(
        wl, homogeneous(2, 4), "FAC2", "SS", approach="mpi+mpi", ppn=4,
        noise=NO_NOISE,
    )
    assert result.parallel_time >= 1.0
    assert result.parallel_time < 1.2  # everything else overlaps the spike


def test_adversarial_band_still_covered():
    wl = banded_workload(512, fast=1e-5, slow=5e-3, band=(0.0, 0.1))
    for approach in ("mpi+mpi", "mpi+openmp", "flat-mpi"):
        result = run_hierarchical(
            wl, homogeneous(2, 4), "GSS", "STATIC", approach=approach, ppn=4,
        )
        verify_schedule(result.subchunks, wl.n)


# ---------------------------------------------------------------------------
# degenerate clusters / costs
# ---------------------------------------------------------------------------


def test_one_core_cluster_serialises():
    wl = constant_workload(100, cost=1e-3)
    result = run_hierarchical(
        wl, homogeneous(1, 1), "GSS", "SS", approach="mpi+mpi", ppn=1,
    )
    assert result.parallel_time >= wl.total_cost


def test_free_communication_costs():
    """All-zero cost tables: pure workload time remains."""
    zero = CostModel().with_overrides(
        **{
            "mpi.shm_lock_attempt": 0.0, "mpi.shm_unlock": 0.0,
            "mpi.shm_win_sync": 0.0, "mpi.shm_access": 0.0,
            "mpi.shm_atomic": 0.0, "mpi.rma_atomic": 0.0,
            "omp.atomic": 0.0, "omp.fork": 0.0,
            "omp.worksharing_init": 0.0, "omp.barrier_base": 0.0,
            "omp.barrier_log": 0.0, "chunk_calc": 0.0,
        }
    )
    wl = constant_workload(256, cost=1e-3)
    from repro.cluster.noise import NO_NOISE

    result = run_hierarchical(
        wl, homogeneous(2, 4), "FAC2", "SS", approach="mpi+mpi", ppn=4,
        costs=zero, noise=NO_NOISE,
    )
    assert result.parallel_time == pytest.approx(wl.total_cost / 8, rel=0.02)


def test_gigantic_lock_costs_slow_but_correct():
    expensive = CostModel().with_overrides(**{"mpi.shm_poll_interval": 5e-3})
    wl = constant_workload(200, cost=1e-4)
    result = run_hierarchical(
        wl, homogeneous(1, 8), "FAC2", "SS", approach="mpi+mpi", ppn=8,
        costs=expensive,
    )
    verify_schedule(result.subchunks, wl.n)


# ---------------------------------------------------------------------------
# local-queue unit behaviour
# ---------------------------------------------------------------------------


class _FakeRun:
    """Minimal stand-in for models.base._Run in _LocalQueue unit tests."""

    def __init__(self, ppn=4):
        from repro.core.hierarchy import HierarchicalSpec

        self.spec = HierarchicalSpec.of("GSS", "GSS")
        self.ppn = ppn
        self.sim = Simulator()
        self.costs = CostModel()


def make_queue():
    run = _FakeRun()
    world = MpiWorld(run.sim, homogeneous(1, 4), ppn=4)
    shm = world.create_shared_window(0, {})
    return _LocalQueue(
        run, level=1, n_children=run.ppn, shm=shm,
        rng_stream="intra-rnd.n0", parent=None, parent_pe=0,
    )


def test_local_queue_take_from_empty():
    queue = make_queue()
    assert queue.take(0) is None


def test_local_queue_deposit_take_exhaust():
    queue = make_queue()
    queue.deposit(src_step=0, start=100, size=40, ancestors=())
    taken = []
    while True:
        sub = queue.take(0)
        if sub is None:
            break
        _head, start, size, _step = sub
        taken.append((start, size))
    assert sum(z for _, z in taken) == 40
    assert taken[0][0] == 100
    # contiguity
    cursor = 100
    for s, z in taken:
        assert s == cursor
        cursor += z


def test_local_queue_multiple_deposits_fifo():
    queue = make_queue()
    queue.deposit(0, 0, 10, ())
    queue.deposit(1, 50, 10, ())
    firsts = [queue.take(0)[1] for _ in range(2)]
    assert firsts[0] < 50  # head chunk drains first


def test_queued_chunk_remaining():
    from repro.core.techniques import get_technique

    chunk = _QueuedChunk(
        src_step=0, start=0, size=10,
        calc=get_technique("SS").make(10, 2),
    )
    assert chunk.remaining == 10
    assert chunk.inter_step == 0  # historical alias
    chunk.taken = 4
    assert chunk.remaining == 6
