"""Robustness tests for degenerate topologies and level/tier mismatches.

The depth generalisation must behave sensibly at the edges: one socket
per node, one core per socket, shallow stacks on deep machines — and
fail loudly (``ValueError``) when a stack is deeper than the machine
has tiers.
"""

import pytest

from repro.api import run_hierarchical
from repro.cluster.machine import ClusterSpec, NodeSpec, homogeneous
from repro.cluster.topology import block_placement
from repro.core.chunking import verify_schedule
from repro.workloads import uniform_workload


# ---------------------------------------------------------------------------
# machine-spec validation
# ---------------------------------------------------------------------------


def test_cores_must_split_evenly_over_sockets():
    with pytest.raises(ValueError, match="split evenly"):
        NodeSpec(cores=6, sockets=4)
    with pytest.raises(ValueError, match=">= 1 socket"):
        NodeSpec(cores=4, sockets=0)


def test_socket_of_core_mapping():
    node = NodeSpec(cores=8, sockets=2)
    assert node.cores_per_socket == 4
    assert [node.socket_of_core(c) for c in range(8)] == [0] * 4 + [1] * 4
    with pytest.raises(ValueError, match="outside node"):
        node.socket_of_core(8)


def test_cluster_socket_properties_uniform_and_mixed():
    uniform = homogeneous(2, 8, sockets_per_node=2)
    assert uniform.sockets_per_node == 2
    assert uniform.cores_per_socket == 4
    mixed = ClusterSpec(
        nodes=(NodeSpec(cores=8, sockets=2), NodeSpec(cores=8, sockets=4))
    )
    with pytest.raises(ValueError, match="mixed socket counts"):
        mixed.sockets_per_node
    with pytest.raises(ValueError, match="mixed cores-per-socket"):
        mixed.cores_per_socket


def test_block_placement_respects_socket_boundaries():
    placement = block_placement(homogeneous(2, 8, sockets_per_node=2), ppn=6)
    # 6 ranks per node: 4 fill socket 0 completely, 2 start socket 1
    assert placement.ranks_on_socket(0, 0) == [0, 1, 2, 3]
    assert placement.ranks_on_socket(0, 1) == [4, 5]
    assert placement.sockets_on_node(1) == [0, 1]
    assert placement.socket_of(4) == 1
    assert placement.socket_rank(5) == 1
    # consecutive ranks never interleave sockets
    for node in (0, 1):
        sockets = [placement.socket_of(r) for r in placement.ranks_on_node(node)]
        assert sockets == sorted(sockets)


# ---------------------------------------------------------------------------
# degenerate topologies run correctly
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("approach", ["mpi+mpi", "mpi+openmp"])
def test_three_level_on_single_socket_nodes(approach):
    """1 socket/node: the socket tier degenerates to the node tier."""
    wl = uniform_workload(300, seed=20)
    result = run_hierarchical(
        wl, homogeneous(2, 4, sockets_per_node=1),
        inter="GSS+FAC2+STATIC", approach=approach, ppn=4, seed=0,
    )
    verify_schedule(result.subchunks, wl.n)


@pytest.mark.parametrize("approach", ["mpi+mpi", "mpi+openmp"])
def test_three_level_one_core_per_socket(approach):
    """1 core/socket: every leaf queue serves exactly one worker."""
    wl = uniform_workload(300, seed=21)
    result = run_hierarchical(
        wl, homogeneous(2, 4, sockets_per_node=4),
        inter="GSS+FAC2+STATIC", approach=approach, ppn=4, seed=0,
    )
    verify_schedule(result.subchunks, wl.n)


def test_three_level_partial_socket_occupancy():
    """ppn below the core count leaves sockets partially (or completely)
    empty; grouping follows the placement, not the raw machine."""
    wl = uniform_workload(300, seed=22)
    for ppn in (1, 3, 5):
        result = run_hierarchical(
            wl, homogeneous(2, 8, sockets_per_node=2),
            inter="GSS+FAC2+SS", approach="mpi+mpi", ppn=ppn, seed=0,
        )
        verify_schedule(result.subchunks, wl.n)


@pytest.mark.parametrize("approach", ["mpi+mpi", "flat-mpi", "master-worker"])
def test_depth_one_on_multi_socket_cluster(approach):
    """Depth-1 stacks ignore the machine's deeper tiers entirely."""
    wl = uniform_workload(300, seed=23)
    result = run_hierarchical(
        wl, homogeneous(2, 4, sockets_per_node=2),
        inter="GSS", intra="SS" if approach != "mpi+mpi" else None,
        approach=approach, ppn=4, seed=0,
    )
    verify_schedule(result.subchunks, wl.n)


def test_single_node_single_core_three_level():
    """The most degenerate machine of all still schedules correctly."""
    wl = uniform_workload(50, seed=24)
    result = run_hierarchical(
        wl, homogeneous(1, 1), inter="GSS+FAC2+STATIC",
        approach="mpi+mpi", ppn=1, seed=0,
    )
    verify_schedule(result.subchunks, wl.n)


# ---------------------------------------------------------------------------
# stacks deeper than the machine has tiers fail loudly
# ---------------------------------------------------------------------------


def test_mpi_mpi_depth_five_raises():
    wl = uniform_workload(100, seed=25)
    with pytest.raises(ValueError, match="at most 4 levels"):
        run_hierarchical(
            wl, homogeneous(2, 8, sockets_per_node=2, numa_per_socket=2),
            inter="GSS+GSS+GSS+GSS+GSS", approach="mpi+mpi", ppn=8,
        )


@pytest.mark.parametrize("stack", ["GSS", "GSS+GSS+GSS+GSS+GSS"])
def test_mpi_openmp_rejects_unmappable_depths(stack):
    wl = uniform_workload(100, seed=26)
    with pytest.raises(ValueError, match="depth-2 stack .* depth-4"):
        run_hierarchical(
            wl, homogeneous(2, 8, sockets_per_node=2, numa_per_socket=2),
            inter=stack, approach="mpi+openmp", ppn=8,
        )


def test_nowait_selffetch_rejects_three_level_stacks():
    """Ablation A-3 (nowait self-fetch) is a two-level protocol; it must
    refuse deeper stacks rather than silently running barrier-style."""
    from repro.core.hierarchy import HierarchicalSpec
    from repro.models import MpiOpenMpModel

    wl = uniform_workload(100, seed=28)
    with pytest.raises(ValueError, match="nowait self-fetch.*two-level"):
        MpiOpenMpModel(nowait_selffetch=True).run(
            wl, homogeneous(2, 8, sockets_per_node=2),
            HierarchicalSpec.of_levels("GSS", "FAC2", "STATIC"), ppn=8,
        )


def test_error_messages_name_the_offending_stack():
    wl = uniform_workload(100, seed=27)
    with pytest.raises(ValueError, match=r"GSS\+SS\+TSS\+FAC2\+STATIC"):
        run_hierarchical(
            wl, homogeneous(2, 8, sockets_per_node=2),
            inter="GSS+SS+TSS+FAC2+STATIC", approach="mpi+mpi", ppn=8,
        )
