"""Roster-wide property harness (ISSUE 8, satellite 1).

One parametrized surface covering EVERY registered technique plus
configured ADAPT ladder instances:

* coverage / positivity / containment — whatever the loop size and PE
  count, every calculator yields positive chunks that tile ``[0, n)``
  exactly;
* memoised-array ≡ sequential equivalence — for deterministic
  calculators the NumPy fast path (``sequence()``, materialised once
  and memoised process-wide) must agree chunk-for-chunk with a fresh
  sequential ``_next_size`` unrolling, i.e. the dCC local-resolution
  arrays and the step-by-step protocol describe the same schedule;
* random depth-1..4 stacks — arbitrary ``+``-joined rosters driven
  through ``run_hierarchical`` still produce a verified schedule.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    IterationProfile,
    get_technique,
    unroll,
    verify_schedule,
)
from repro.core.techniques import TECHNIQUES
from repro.cluster.machine import homogeneous
from repro.api import run_hierarchical
from repro.workloads import uniform_workload

#: every registered name, plus configured selector ladders — the full
#: surface a user can spell in a spec.
LADDERS = (
    "ADAPT[ss,fac2]",
    "ADAPT[fac2,gss,tss]",
    "ADAPT[ss,fac2,gss,tss,window=6,dwell=2,improve=0.05]",
)
ROSTER = sorted(TECHNIQUES) + list(LADDERS)
DETERMINISTIC = sorted(
    name for name, t in TECHNIQUES.items()
    if not t.pe_dependent and not t.adaptive
)
#: stackable names for whole-run stacks: everything except the two
#: techniques that require an explicit a-priori profile at the level
#: spec (FSC, FAC) — nothing auto-fills those in a ``+``-joined string.
STACKABLE = sorted(
    name for name, t in TECHNIQUES.items() if not t.needs_profile
) + ["ADAPT[ss,fac2,tss]"]

sizes = st.integers(min_value=0, max_value=4000)
pes = st.integers(min_value=1, max_value=48)


def make(name, n, p, seed=0):
    return get_technique(name).make(
        n,
        p,
        profile=IterationProfile(mu=1e-3, sigma=4e-4),
        weights=None,
        rng=np.random.default_rng(seed),
    )


@given(name=st.sampled_from(ROSTER), n=sizes, p=pes)
@settings(max_examples=300, deadline=None)
def test_roster_covers_positively_and_exactly(name, n, p):
    """Coverage + positivity + containment for the whole roster."""
    chunks = unroll(make(name, n, p))
    for chunk in chunks:
        assert chunk.size >= 1
        assert 0 <= chunk.start and chunk.start + chunk.size <= n
    verify_schedule(chunks, n)


@given(name=st.sampled_from(DETERMINISTIC), n=sizes, p=pes)
@settings(max_examples=300, deadline=None)
def test_memoised_array_matches_sequential_unroll(name, n, p):
    """The dCC fast path and the step protocol agree chunk-for-chunk."""
    fast = make(name, n, p).sequence()
    # reference: fresh calculator, sequential recurrence with the
    # base-class clamp — no arrays, no memo cache
    ref_calc = make(name, n, p)
    ref, total = [], 0
    while total < n:
        size = ref_calc._next_size(n - total, len(ref))
        size = max(1, min(int(size), n - total))
        ref.append(size)
        total += size
    assert fast == ref


@pytest.mark.parametrize("spelling", LADDERS)
def test_ladder_instances_cover(spelling):
    technique = get_technique(spelling)
    assert technique.name == spelling.replace("ADAPT[", "ADAPT[").strip()
    for n, p in ((0, 3), (1, 1), (977, 7), (4096, 16)):
        verify_schedule(unroll(technique.make(n, p)), n)


stacks = st.lists(st.sampled_from(STACKABLE), min_size=1, max_size=4)


@given(stack=stacks, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_random_stacks_schedule_exactly(stack, seed):
    """Any depth-1..4 roster stack produces a verified schedule."""
    wl = uniform_workload(120, seed=seed % 7)
    cluster = homogeneous(2, 4, sockets_per_node=2, numa_per_socket=2)
    result = run_hierarchical(
        wl,
        cluster,
        inter="+".join(stack),
        intra=None,
        approach="mpi+mpi",
        ppn=4,
        seed=seed,
    )
    verify_schedule(result.subchunks, wl.n)
    assert result.parallel_time > 0
