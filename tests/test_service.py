"""Tests for the sweep job server and the concurrent cache semantics.

The guarantees under test:

* a ``POST /sweep`` response contains exactly the cells a local
  :class:`~repro.experiments.harness.GridRunner` would produce for the
  same grid (``wall_seconds`` excepted), and the two share cache
  entries (identical ``cell_key`` digests);
* duplicate concurrent requests yield **exactly-once simulation**: the
  in-flight registry attaches late requests to the running future, and
  the cache-put-before-registry-release ordering leaves no window in
  which a duplicate would re-simulate;
* the :class:`~repro.experiments.parallel.CellCache` survives threads
  and processes hammering one directory with overlapping keys — no
  corrupt reads, no lost puts, no lost statistics — and init-time
  temp reaping removes only *stale* orphans, never in-flight writers.
"""

import json
import os
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments.harness import Cell, GridRunner
from repro.experiments.parallel import CellCache, cell_key, workload_fingerprint
from repro.experiments.workloads import figure_workload
from repro.service import CellExecutor, CellJob, SpecError, SweepSpec, create_server


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def make_cell(intra="STATIC", nodes=2, t=1.0):
    return Cell(
        approach="mpi+mpi", inter="GSS", intra=intra, nodes=nodes,
        time=t, overhead_fraction=0.1, idle_fraction=0.05, cov=0.3,
        n_events=100, wall_seconds=0.0,
    )


TINY_SWEEP = {
    "workload": {"app": "mandelbrot", "scale": "tiny"},
    "cluster": {"ppn": 4},
    "inter": "GSS",
    "intras": ["STATIC", "SS"],
    "approaches": ["mpi+mpi"],
    "node_counts": [2],
    "seed": 0,
}


@pytest.fixture()
def server(tmp_path):
    srv = create_server(port=0, jobs=2, cache_dir=str(tmp_path / "cache"), quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    srv.executor.shutdown()
    thread.join(timeout=10)


def post_sweep(srv, payload):
    """POST a sweep and return the parsed NDJSON lines."""
    host, port = srv.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}/sweep",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        assert response.headers["Content-Type"] == "application/x-ndjson"
        return [json.loads(line) for line in response]


def get_json(srv, path):
    host, port = srv.server_address[:2]
    with urllib.request.urlopen(f"http://{host}:{port}{path}") as response:
        return json.loads(response.read())


# ---------------------------------------------------------------------------
# sweep spec surface
# ---------------------------------------------------------------------------
def test_spec_round_trip():
    spec = SweepSpec.from_json(TINY_SWEEP)
    assert spec.app == "mandelbrot" and spec.scale == "tiny"
    assert spec.intras == ("STATIC", "SS") and spec.ppn == 4
    assert SweepSpec.from_json(spec.to_json()) == spec


def test_spec_singular_aliases():
    spec = SweepSpec.from_json(
        {"inter": "GSS", "intra": "SS", "approach": "dcc", "nodes": 2,
         "app": "psia", "scale": "tiny", "ppn": 8}
    )
    assert spec.intras == ("SS",)
    assert spec.approaches == ("dcc",)
    assert spec.node_counts == (2,)
    assert spec.app == "psia" and spec.ppn == 8


def test_spec_grid_expansion():
    spec = SweepSpec.from_json(dict(TINY_SWEEP, intras=["SS", "GSS"],
                                    node_counts=[2, 4]))
    assert spec.grid() == [
        ("mpi+mpi", "GSS", "SS", 2), ("mpi+mpi", "GSS", "SS", 4),
        ("mpi+mpi", "GSS", "GSS", 2), ("mpi+mpi", "GSS", "GSS", 4),
    ]
    assert len(set(spec.cell_keys())) == 4


@pytest.mark.parametrize("mutation", [
    {"inter": None},                      # missing technique stack
    {"intras": []},                       # empty grid axis
    {"workload": {"app": "fft"}},         # unknown workload
    {"workload": {"scale": "galactic"}},  # unknown scale
    {"approaches": ["simd"]},             # unknown execution model
    {"node_counts": [0]},                 # non-positive nodes
    {"costs": "free"},                    # unknown preset
    {"placement": "anywhere"},            # unknown policy
    {"faults": "explode:1@now"},          # unparsable fault spec
    {"surprise": 1},                      # unknown field
    {"dcc": "yes"},                       # non-boolean
])
def test_spec_rejects_bad_requests(mutation):
    payload = dict(TINY_SWEEP)
    payload.update(mutation)
    if payload.get("inter") is None:
        payload.pop("inter", None)
    with pytest.raises(SpecError):
        SweepSpec.from_json(payload)


def test_spec_keys_match_gridrunner_keys(tmp_path):
    """A service cell and a GridRunner cell with the same inputs must
    share one cache entry — the dedup story across entry points."""
    workload = figure_workload("mandelbrot", "tiny")
    runner = GridRunner(workload=workload, ppn=4, node_counts=(2,),
                        cache_dir=str(tmp_path))
    runner.sweep("GSS", ("STATIC", "SS"), [("mpi+mpi", lambda intra: True)])

    spec = SweepSpec.from_json(TINY_SWEEP)
    cache = CellCache(str(tmp_path))
    for key in spec.cell_keys():
        assert cache.get(key) is not None, "service key missed GridRunner's entry"


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------
def test_sweep_matches_grid_runner(server):
    lines = post_sweep(server, TINY_SWEEP)
    trailer = lines[-1]
    assert trailer["done"] and trailer["cells"] == 2 and trailer["errors"] == 0
    cells = {line["intra"]: Cell.from_dict(line["cell"]) for line in lines[:-1]}

    workload = figure_workload("mandelbrot", "tiny")
    runner = GridRunner(workload=workload, ppn=4, node_counts=(2,))
    expected = runner.sweep("GSS", ("STATIC", "SS"),
                            [("mpi+mpi", lambda intra: True)])
    for cell in expected:
        assert cells[cell.intra].same_result(cell)


def test_second_sweep_served_from_cache(server):
    first = post_sweep(server, TINY_SWEEP)
    assert first[-1]["sources"]["simulated"] == 2
    second = post_sweep(server, TINY_SWEEP)
    assert second[-1]["sources"] == {"cache": 2, "inflight": 0, "simulated": 0}
    by_key = {line["key"]: line for line in first[:-1]}
    for line in second[:-1]:
        assert Cell.from_dict(line["cell"]).same_result(
            Cell.from_dict(by_key[line["key"]]["cell"])
        )


def test_concurrent_duplicate_requests_simulated_exactly_once(server):
    """The acceptance criterion: >= 4 concurrent clients posting the
    same grid produce exactly one simulation per unique cell."""
    n_clients, barrier = 5, threading.Barrier(5)
    results, errors = [None] * n_clients, []

    def client(i):
        try:
            barrier.wait(timeout=10)
            results[i] = post_sweep(server, TINY_SWEEP)
        except Exception as error:  # pragma: no cover — diagnostic path
            errors.append(error)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors

    metrics = get_json(server, "/metrics")
    assert metrics["simulated"] == 2, "duplicate cells must simulate exactly once"
    total = {"cache": 0, "inflight": 0, "simulated": 0}
    reference = results[0][:-1]
    for lines in results:
        trailer = lines[-1]
        assert trailer["cells"] == 2 and trailer["errors"] == 0
        for source, count in trailer["sources"].items():
            total[source] += count
        by_key = {line["key"]: line for line in lines[:-1]}
        for ref in reference:
            assert Cell.from_dict(by_key[ref["key"]]["cell"]).same_result(
                Cell.from_dict(ref["cell"])
            )
    assert total["simulated"] == 2
    assert sum(total.values()) == n_clients * 2
    assert metrics["dedup_hits"] + metrics["cache_hits"] == n_clients * 2 - 2


def test_metrics_and_healthz(server):
    assert get_json(server, "/healthz") == {"status": "ok"}
    post_sweep(server, TINY_SWEEP)
    metrics = get_json(server, "/metrics")
    for field in ("in_flight", "queue_depth", "max_workers", "simulated",
                  "completed", "dedup_hits", "cache_hits", "errors",
                  "cells_per_s", "uptime_s", "requests", "cache"):
        assert field in metrics, f"metrics missing {field!r}"
    assert metrics["cache"]["hits"] >= 0
    assert metrics["requests"]["sweeps"] == 1
    assert metrics["completed"] == metrics["simulated"] == 2
    assert metrics["in_flight"] == 0


def test_bad_sweep_requests_get_400(server):
    host, port = server.server_address[:2]

    def post_raw(body):
        request = urllib.request.Request(
            f"http://{host}:{port}/sweep", data=body,
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        return json.loads(excinfo.value.read())

    assert "error" in post_raw(b"{not json")
    assert "error" in post_raw(json.dumps({"intras": ["SS"]}).encode())
    assert "error" in post_raw(json.dumps(dict(TINY_SWEEP, surprise=1)).encode())
    assert get_json(server, "/metrics")["requests"]["bad"] == 3


def test_unknown_endpoint_404(server):
    host, port = server.server_address[:2]
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(f"http://{host}:{port}/nope")
    assert excinfo.value.code == 404


def test_simulation_error_streams_as_error_line(server):
    # an unknown technique fails inside the pool worker — it must
    # stream back as an error line, not kill the server or the stream
    lines = post_sweep(server, dict(TINY_SWEEP, intras=["NOSUCH"]))
    assert lines[-1]["errors"] == 1
    (error_line,) = [line for line in lines[:-1] if "error" in line]
    assert error_line["intra"] == "NOSUCH" and "cell" not in error_line
    # the server is still healthy and a good sweep still works
    assert get_json(server, "/healthz") == {"status": "ok"}
    good = post_sweep(server, TINY_SWEEP)
    assert good[-1]["errors"] == 0 and good[-1]["cells"] == 2


def test_main_entry_point_serves_until_shutdown():
    """``repro-serve`` end to end: main() binds, serves, exits cleanly
    on POST /shutdown (the CI quickstart's lifecycle, in process)."""
    import socket

    from repro.service.server import main

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    exit_codes = []
    thread = threading.Thread(
        target=lambda: exit_codes.append(
            main(["--port", str(port), "--jobs", "1", "--quiet"])
        ),
        daemon=True,
    )
    thread.start()
    deadline = time.time() + 10
    while time.time() < deadline:
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz"
            ) as response:
                assert json.loads(response.read()) == {"status": "ok"}
            break
        except OSError:
            time.sleep(0.05)
    else:  # pragma: no cover — diagnostic path
        pytest.fail("server never came up")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/shutdown", data=b"", method="POST"
    )
    with urllib.request.urlopen(request) as response:
        assert json.loads(response.read())["status"] == "shutting down"
    thread.join(timeout=30)
    assert exit_codes == [0]


def test_cli_serve_subcommand_registered():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--port", "0", "--jobs", "3", "--cache-dir", "x", "--quiet"]
    )
    assert args.port == 0 and args.jobs == 3
    assert args.cache_dir == "x" and args.quiet


# ---------------------------------------------------------------------------
# executor-level exactly-once
# ---------------------------------------------------------------------------
def test_executor_dedups_racing_resolves(tmp_path):
    executor = CellExecutor(CellCache(str(tmp_path)), jobs=2)
    try:
        spec = SweepSpec.from_json(TINY_SWEEP)
        key = spec.cell_keys()[0]
        job = CellJob(key, spec, "mpi+mpi", "GSS", "STATIC", 2)
        n_threads, barrier = 8, threading.Barrier(8)
        outcomes = [None] * n_threads

        def race(i):
            barrier.wait(timeout=10)
            future, source = executor.resolve(job)
            outcomes[i] = (future.result(timeout=60), source)

        threads = [threading.Thread(target=race, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert executor.simulated == 1, "racing duplicates must submit once"
        cells = [cell for cell, _source in outcomes]
        assert all(cell.same_result(cells[0]) for cell in cells)
        sources = [source for _cell, source in outcomes]
        assert sources.count("simulated") == 1
        assert set(sources) <= {"simulated", "inflight", "cache"}
    finally:
        executor.shutdown()


def test_executor_failed_simulation_not_cached(tmp_path):
    executor = CellExecutor(CellCache(str(tmp_path)), jobs=1)
    try:
        spec = SweepSpec.from_json(dict(TINY_SWEEP, intras=["NOSUCH"]))
        job = CellJob(spec.cell_keys()[0], spec, "mpi+mpi", "GSS", "NOSUCH", 2)
        future, source = executor.resolve(job)
        assert source == "simulated"
        with pytest.raises(Exception):
            future.result(timeout=60)
        deadline = time.time() + 10
        while executor.metrics()["in_flight"] and time.time() < deadline:
            time.sleep(0.01)
        assert executor.metrics()["errors"] == 1
        assert len(CellCache(str(tmp_path))) == 0, "failures must not be cached"
        # the key was released: a retry submits again instead of attaching
        _future, source = executor.resolve(job)
        assert source == "simulated"
    finally:
        executor.shutdown()


# ---------------------------------------------------------------------------
# concurrent cache semantics (threads)
# ---------------------------------------------------------------------------
def test_cache_counters_survive_thread_hammering(tmp_path):
    cache = CellCache(str(tmp_path))
    keys = [f"{i:064d}" for i in range(8)]
    for i, key in enumerate(keys[:4]):  # half present, half missing
        cache.put(key, make_cell(nodes=2, t=float(i)))
    n_threads, per_thread = 8, 50
    barrier = threading.Barrier(n_threads)

    def hammer(tid):
        barrier.wait(timeout=10)
        for i in range(per_thread):
            cache.get(keys[(tid + i) % len(keys)])

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    stats = cache.stats()
    # no increment may be lost: every get is exactly one hit or miss
    assert stats["hits"] + stats["misses"] == n_threads * per_thread
    assert stats["hits"] > 0 and stats["misses"] > 0


def test_cache_concurrent_writers_and_readers_no_corruption(tmp_path):
    """Writers re-put overlapping keys while readers poll: every read
    is either a miss or a complete, valid Cell (atomic publish)."""
    cache = CellCache(str(tmp_path))
    keys = [f"{i:064x}" for i in range(4)]
    stop = threading.Event()
    bad_reads = []

    def writer(tid):
        for i in range(30):
            for key in keys:
                cache.put(key, make_cell(nodes=2, t=float(tid * 1000 + i)))

    def reader():
        while not stop.is_set():
            for key in keys:
                cell = cache.get(key)
                if cell is not None and cell.inter != "GSS":
                    bad_reads.append(cell)

    readers = [threading.Thread(target=reader) for _ in range(3)]
    writers = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
    for t in readers + writers:
        t.start()
    for t in writers:
        t.join(timeout=60)
    stop.set()
    for t in readers:
        t.join(timeout=60)
    assert not bad_reads
    assert cache.stats()["quarantined"] == 0, "a read saw a partial write"
    for key in keys:  # no lost puts: every key readable afterwards
        assert cache.get(key) is not None


# ---------------------------------------------------------------------------
# concurrent cache semantics (processes)
# ---------------------------------------------------------------------------
def _process_putter(args):
    """Module-level so the pool can pickle it: put ``rounds`` cells."""
    root, tid, keys, rounds = args
    cache = CellCache(root)
    for i in range(rounds):
        for key in keys:
            cache.put(key, make_cell(nodes=2, t=float(tid * 1000 + i)))
    return len(keys) * rounds


def test_cache_multiprocess_writers_no_lost_puts(tmp_path):
    keys = [f"{i:064x}" for i in range(6)]
    with ProcessPoolExecutor(max_workers=4) as pool:
        totals = list(pool.map(
            _process_putter,
            [(str(tmp_path), tid, keys, 10) for tid in range(4)],
        ))
    assert all(total == 60 for total in totals)
    cache = CellCache(str(tmp_path))
    assert len(cache) == len(keys)
    for key in keys:
        assert cache.get(key) is not None, "a put was lost"
    assert not list(tmp_path.glob("*.tmp")), "writers leaked temp files"
    assert not list(tmp_path.glob("*.corrupt"))


# ---------------------------------------------------------------------------
# temp-file reaping
# ---------------------------------------------------------------------------
def test_stale_tmp_files_reaped_fresh_kept(tmp_path):
    stale = tmp_path / "tmpdead01.tmp"
    stale.write_text("{half a payl")
    two_hours_ago = time.time() - 7200
    os.utime(stale, (two_hours_ago, two_hours_ago))
    fresh = tmp_path / "tmplive01.tmp"
    fresh.write_text("{in-flight ")

    cache = CellCache(str(tmp_path))
    assert cache.reaped == 1
    assert cache.stats()["reaped"] == 1
    assert not stale.exists(), "stale orphan must be reaped"
    assert fresh.exists(), "a racing writer's fresh temp file must survive"


def test_reap_ignores_non_tmp_files(tmp_path):
    cache0 = CellCache(str(tmp_path))
    key = "f" * 64
    cache0.put(key, make_cell())
    old = time.time() - 7200
    os.utime(tmp_path / f"{key}.json", (old, old))
    cache = CellCache(str(tmp_path))
    assert cache.reaped == 0
    assert cache.get(key) is not None, "reaping must never touch entries"
