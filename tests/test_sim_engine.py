"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.sim import (
    Compute,
    Overhead,
    ProcessFailure,
    SimEvent,
    Simulator,
    Timeout,
)
from repro.sim.engine import drain
from repro.sim.primitives import Delay, Halt, Spawn


def test_empty_simulator_runs_to_zero():
    sim = Simulator()
    assert sim.run() == 0.0
    assert sim.now == 0.0


def test_single_process_advances_time():
    sim = Simulator()
    log = []

    def proc():
        yield Compute(1.5)
        log.append(sim.now)
        yield Compute(2.5)
        log.append(sim.now)

    sim.spawn(proc(), name="p")
    end = sim.run()
    assert log == [1.5, 4.0]
    assert end == 4.0


def test_spawn_requires_generator():
    sim = Simulator()

    def not_a_gen():
        return 42

    with pytest.raises(TypeError, match="generator"):
        sim.spawn(not_a_gen)  # type: ignore[arg-type]


def test_zero_delay_resumes_inline_without_event():
    sim = Simulator()

    def proc():
        for _ in range(100):
            yield Compute(0.0)

    sim.spawn(proc())
    sim.run()
    # only the initial resume should hit the heap
    assert sim.n_events_processed == 1


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def proc(name, dt):
        for i in range(3):
            yield Compute(dt)
            order.append((name, sim.now))

    sim.spawn(proc("a", 1.0))
    sim.spawn(proc("b", 1.5))
    sim.run()
    # at the t=3.0 tie, b's resume was scheduled (at t=1.5) before a's
    # (at t=2.0), so FIFO sequence numbers put b first
    assert order == [
        ("a", 1.0),
        ("b", 1.5),
        ("a", 2.0),
        ("b", 3.0),
        ("a", 3.0),
        ("b", 4.5),
    ]


def test_fifo_tiebreak_preserves_spawn_order():
    sim = Simulator()
    order = []

    def proc(name):
        yield Compute(1.0)
        order.append(name)

    for name in ("x", "y", "z"):
        sim.spawn(proc(name))
    sim.run()
    assert order == ["x", "y", "z"]


def test_event_wait_and_trigger():
    sim = Simulator()
    gate = sim.event("gate")
    seen = []

    def waiter():
        value = yield gate
        seen.append((sim.now, value))

    def firer():
        yield Compute(3.0)
        gate.trigger("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert seen == [(3.0, "payload")]


def test_triggered_event_resumes_immediately():
    sim = Simulator()
    gate = sim.event()
    gate.trigger("early")
    got = []

    def waiter():
        value = yield gate
        got.append(value)

    sim.spawn(waiter())
    sim.run()
    assert got == ["early"]


def test_double_trigger_raises():
    sim = Simulator()
    gate = sim.event()
    gate.trigger()
    with pytest.raises(RuntimeError, match="already triggered"):
        gate.trigger()


def test_negative_delay_rejected():
    with pytest.raises(ValueError, match="negative delay"):
        Delay(-1.0)


def test_process_time_accounting():
    sim = Simulator()

    def proc():
        yield Compute(2.0)
        yield Overhead(0.5)
        yield Timeout(0.25)

    p = sim.spawn(proc())
    sim.run()
    assert p.compute_time == pytest.approx(2.0)
    assert p.overhead_time == pytest.approx(0.5)
    assert p.idle_time == pytest.approx(0.25)
    assert p.end_time == pytest.approx(2.75)


def test_implicit_wait_time_accounting():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        yield Compute(1.0)
        yield gate

    def firer():
        yield Compute(5.0)
        gate.trigger()

    w = sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    # waited from t=1 to t=5
    assert w.wait_time == pytest.approx(4.0)


def test_done_event_carries_return_value():
    sim = Simulator()
    results = []

    def child():
        yield Compute(1.0)
        return "answer"

    def parent():
        proc = yield Spawn(lambda: child(), name="child")
        value = yield proc.done
        results.append(value)

    sim.spawn(parent())
    sim.run()
    assert results == ["answer"]


def test_process_exception_wrapped_with_name():
    sim = Simulator()

    def bad():
        yield Compute(1.0)
        raise ValueError("boom")

    sim.spawn(bad(), name="badproc")
    with pytest.raises(ProcessFailure, match="badproc"):
        sim.run()


def test_unknown_command_rejected():
    sim = Simulator()

    def weird():
        yield 42  # type: ignore[misc]

    sim.spawn(weird(), name="weird")
    with pytest.raises(TypeError, match="unsupported command"):
        sim.run()


def test_run_until_pauses_and_resumes():
    sim = Simulator()

    def proc():
        yield Compute(10.0)

    p = sim.spawn(proc())
    sim.run(until=4.0)
    assert sim.now == 4.0
    assert p.alive
    sim.run()
    assert not p.alive
    assert sim.now == 10.0


def test_halt_stops_simulation():
    sim = Simulator()

    def stopper():
        yield Compute(1.0)
        yield Halt("test stop")

    def runner():
        yield Compute(100.0)

    sim.spawn(stopper())
    sim.spawn(runner())
    sim.run()
    assert sim.halted_reason == "test stop"
    assert sim.now == 1.0


def test_rng_streams_are_deterministic_and_independent():
    sim_a = Simulator(seed=7)
    sim_b = Simulator(seed=7)
    # same seed, same stream -> same numbers, regardless of creation order
    _ = sim_b.rng("other")
    assert sim_a.rng("s").random() == sim_b.rng("s").random()
    # different streams -> different numbers
    assert sim_a.rng("s2").random() != sim_a.rng("s").random()
    # different seeds -> different numbers
    assert Simulator(seed=8).rng("s").random() != Simulator(seed=7).rng("s").random()


def test_drain_detects_deadlock():
    sim = Simulator()
    gate = sim.event()

    def stuck():
        yield gate

    p = sim.spawn(stuck(), name="stuck")
    with pytest.raises(RuntimeError, match="deadlock"):
        drain(sim, [p])


def test_trace_callback_receives_emits():
    records = []
    sim = Simulator(trace=lambda t, p, label, payload: records.append((t, p, label)))

    def proc():
        yield Compute(1.0)
        sim.emit("proc", "did-something")

    sim.spawn(proc())
    sim.run()
    assert records == [(1.0, "proc", "did-something")]


def test_yield_from_subroutines_bubble_commands():
    sim = Simulator()
    log = []

    def helper():
        yield Compute(2.0)
        return "sub"

    def proc():
        value = yield from helper()
        log.append((sim.now, value))

    sim.spawn(proc())
    sim.run()
    assert log == [(2.0, "sub")]
