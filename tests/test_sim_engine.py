"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.sim import (
    Compute,
    Overhead,
    ProcessFailure,
    SimEvent,
    Simulator,
    Timeout,
)
from repro.sim.engine import drain
from repro.sim.primitives import Delay, Halt, Spawn


def test_empty_simulator_runs_to_zero():
    sim = Simulator()
    assert sim.run() == 0.0
    assert sim.now == 0.0


def test_single_process_advances_time():
    sim = Simulator()
    log = []

    def proc():
        yield Compute(1.5)
        log.append(sim.now)
        yield Compute(2.5)
        log.append(sim.now)

    sim.spawn(proc(), name="p")
    end = sim.run()
    assert log == [1.5, 4.0]
    assert end == 4.0


def test_spawn_requires_generator():
    sim = Simulator()

    def not_a_gen():
        return 42

    with pytest.raises(TypeError, match="generator"):
        sim.spawn(not_a_gen)  # type: ignore[arg-type]


def test_zero_delay_resumes_inline_without_event():
    sim = Simulator()

    def proc():
        for _ in range(100):
            yield Compute(0.0)

    sim.spawn(proc())
    sim.run()
    # only the initial resume should hit the heap
    assert sim.n_events_processed == 1


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def proc(name, dt):
        for i in range(3):
            yield Compute(dt)
            order.append((name, sim.now))

    sim.spawn(proc("a", 1.0))
    sim.spawn(proc("b", 1.5))
    sim.run()
    # at the t=3.0 tie, b's resume was scheduled (at t=1.5) before a's
    # (at t=2.0), so FIFO sequence numbers put b first
    assert order == [
        ("a", 1.0),
        ("b", 1.5),
        ("a", 2.0),
        ("b", 3.0),
        ("a", 3.0),
        ("b", 4.5),
    ]


def test_fifo_tiebreak_preserves_spawn_order():
    sim = Simulator()
    order = []

    def proc(name):
        yield Compute(1.0)
        order.append(name)

    for name in ("x", "y", "z"):
        sim.spawn(proc(name))
    sim.run()
    assert order == ["x", "y", "z"]


def test_event_wait_and_trigger():
    sim = Simulator()
    gate = sim.event("gate")
    seen = []

    def waiter():
        value = yield gate
        seen.append((sim.now, value))

    def firer():
        yield Compute(3.0)
        gate.trigger("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert seen == [(3.0, "payload")]


def test_triggered_event_resumes_immediately():
    sim = Simulator()
    gate = sim.event()
    gate.trigger("early")
    got = []

    def waiter():
        value = yield gate
        got.append(value)

    sim.spawn(waiter())
    sim.run()
    assert got == ["early"]


def test_double_trigger_raises():
    sim = Simulator()
    gate = sim.event()
    gate.trigger()
    with pytest.raises(RuntimeError, match="already triggered"):
        gate.trigger()


def test_negative_delay_rejected():
    with pytest.raises(ValueError, match="negative delay"):
        Delay(-1.0)


def test_process_time_accounting():
    sim = Simulator()

    def proc():
        yield Compute(2.0)
        yield Overhead(0.5)
        yield Timeout(0.25)

    p = sim.spawn(proc())
    sim.run()
    assert p.compute_time == pytest.approx(2.0)
    assert p.overhead_time == pytest.approx(0.5)
    assert p.idle_time == pytest.approx(0.25)
    assert p.end_time == pytest.approx(2.75)


def test_implicit_wait_time_accounting():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        yield Compute(1.0)
        yield gate

    def firer():
        yield Compute(5.0)
        gate.trigger()

    w = sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    # waited from t=1 to t=5
    assert w.wait_time == pytest.approx(4.0)


def test_done_event_carries_return_value():
    sim = Simulator()
    results = []

    def child():
        yield Compute(1.0)
        return "answer"

    def parent():
        proc = yield Spawn(lambda: child(), name="child")
        value = yield proc.done
        results.append(value)

    sim.spawn(parent())
    sim.run()
    assert results == ["answer"]


def test_process_exception_wrapped_with_name():
    sim = Simulator()

    def bad():
        yield Compute(1.0)
        raise ValueError("boom")

    sim.spawn(bad(), name="badproc")
    with pytest.raises(ProcessFailure, match="badproc"):
        sim.run()


def test_unknown_command_rejected():
    sim = Simulator()

    def weird():
        yield 42  # type: ignore[misc]

    sim.spawn(weird(), name="weird")
    with pytest.raises(TypeError, match="unsupported command"):
        sim.run()


def test_run_until_pauses_and_resumes():
    sim = Simulator()

    def proc():
        yield Compute(10.0)

    p = sim.spawn(proc())
    sim.run(until=4.0)
    assert sim.now == 4.0
    assert p.alive
    sim.run()
    assert not p.alive
    assert sim.now == 10.0


def test_halt_stops_simulation():
    sim = Simulator()

    def stopper():
        yield Compute(1.0)
        yield Halt("test stop")

    def runner():
        yield Compute(100.0)

    sim.spawn(stopper())
    sim.spawn(runner())
    sim.run()
    assert sim.halted_reason == "test stop"
    assert sim.now == 1.0


def test_rng_streams_are_deterministic_and_independent():
    sim_a = Simulator(seed=7)
    sim_b = Simulator(seed=7)
    # same seed, same stream -> same numbers, regardless of creation order
    _ = sim_b.rng("other")
    assert sim_a.rng("s").random() == sim_b.rng("s").random()
    # different streams -> different numbers
    assert sim_a.rng("s2").random() != sim_a.rng("s").random()
    # different seeds -> different numbers
    assert Simulator(seed=8).rng("s").random() != Simulator(seed=7).rng("s").random()


def test_drain_detects_deadlock():
    sim = Simulator()
    gate = sim.event()

    def stuck():
        yield gate

    p = sim.spawn(stuck(), name="stuck")
    with pytest.raises(RuntimeError, match="deadlock"):
        drain(sim, [p])


def test_trace_callback_receives_emits():
    records = []
    sim = Simulator(trace=lambda t, p, label, payload: records.append((t, p, label)))

    def proc():
        yield Compute(1.0)
        sim.emit("proc", "did-something")

    sim.spawn(proc())
    sim.run()
    assert records == [(1.0, "proc", "did-something")]


def test_interned_delay_factories_reuse_objects():
    """Compute/Overhead/Timeout intern per (kind, duration) — the engine
    hot path sees the same handful of modelled costs millions of times."""
    from repro.sim.primitives import clear_delay_caches

    clear_delay_caches()  # earlier tests may have filled the bounded caches
    assert Compute(1e-6) is Compute(1e-6)
    assert Overhead(5e-6) is Overhead(5e-6)
    assert Timeout(2e-6) is Timeout(2e-6)
    assert Compute(1e-6) is not Overhead(1e-6)
    assert Compute(1e-6).duration == 1e-6


def test_mixed_ready_and_heap_order_is_seq_exact():
    """Zero-delay resumes (ready deque) and timed resumes (heap) must
    interleave in exact (time, seq) order at equal timestamps."""
    sim = Simulator()
    order = []
    gate = sim.event("gate")

    def sleeper(name, dt):
        yield Compute(dt)
        order.append(name)

    def waiter():
        yield gate
        order.append("waiter")

    def firer():
        yield Compute(1.0)
        order.append("firer")
        gate.trigger()

    # heap entry for "late" (t=1.0) is scheduled before the waiter's
    # trigger-resume (t=1.0, later seq) — heap must win the tie.
    sim.spawn(sleeper("late", 1.0))
    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert order == ["late", "firer", "waiter"]


def test_halt_from_zero_delay_phase():
    """Halt raised out of the ready-deque lane still stops cleanly."""
    sim = Simulator()

    def stopper():
        yield Compute(0.0)
        yield Halt("early")

    def runner():
        yield Compute(5.0)

    sim.spawn(stopper())
    p = sim.spawn(runner())
    sim.run()
    assert sim.halted_reason == "early"
    assert sim.now == 0.0
    assert p.alive
    sim._halted = None
    sim.run()
    assert not p.alive


def test_run_until_then_trigger_then_continue():
    """Pausing at `until`, triggering an event, and resuming preserves
    both the pending heap entry and the new ready entry."""
    sim = Simulator()
    gate = sim.event()
    seen = []

    def sleeper():
        yield Compute(10.0)
        seen.append("slept")

    def waiter():
        yield gate
        seen.append("woken")

    sim.spawn(sleeper())
    sim.spawn(waiter())
    sim.run(until=4.0)
    assert sim.now == 4.0
    gate.trigger()
    sim.run()
    assert seen == ["woken", "slept"]
    assert sim.now == 10.0


def test_done_event_lazy_after_termination():
    """Accessing .done after a process finished yields a pre-triggered
    event carrying the result."""
    sim = Simulator()

    def worker():
        yield Compute(1.0)
        return 99

    p = sim.spawn(worker())
    sim.run()
    got = []

    def late_waiter():
        value = yield p.done
        got.append(value)

    sim.spawn(late_waiter())
    sim.run()
    assert got == [99]


def test_spawn_factory_index_error_propagates():
    """An IndexError raised by a Spawn factory must surface, not be
    mistaken for heap exhaustion by the run loop."""
    sim = Simulator()
    bodies = []

    def parent():
        yield Compute(1.0)
        yield Spawn(lambda: bodies[5], name="child")  # IndexError

    sim.spawn(parent(), name="parent")
    with pytest.raises(IndexError):
        sim.run()


def test_done_after_crash_is_not_pretriggered():
    """A crashed process must not report successful completion through
    a lazily-created done event."""
    sim = Simulator()

    def bad():
        yield Compute(1.0)
        raise ValueError("boom")

    p = sim.spawn(bad(), name="bad")
    with pytest.raises(ProcessFailure):
        sim.run()
    assert not p.alive
    assert not p.finished
    assert p.done.triggered is False  # late access: still pending


def test_compute_once_bypasses_interning():
    from repro.sim.primitives import ComputeOnce, OverheadOnce

    a, b = ComputeOnce(1e-6), ComputeOnce(1e-6)
    assert a is not b
    assert a.duration == b.duration == 1e-6
    assert OverheadOnce(2e-6).kind.value == "overhead"


def test_custom_command_subclasses_still_dispatch():
    """Delay/SimEvent subclasses go through the memoised dispatch table."""
    sim = Simulator()

    class MyDelay(Delay):
        pass

    def proc():
        yield MyDelay(2.0)
        return "ok"

    p = sim.spawn(proc())
    sim.run()
    assert p.result == "ok"
    assert sim.now == 2.0
    assert p.overhead_time == pytest.approx(2.0)


def test_yield_from_subroutines_bubble_commands():
    sim = Simulator()
    log = []

    def helper():
        yield Compute(2.0)
        return "sub"

    def proc():
        value = yield from helper()
        log.append((sim.now, value))

    sim.spawn(proc())
    sim.run()
    assert log == [(2.0, "sub")]
