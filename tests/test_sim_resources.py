"""Unit tests for locks, semaphores, barriers, and stores."""

import pytest

from repro.sim import Barrier, Compute, Lock, Semaphore, Simulator, Store


# ---------------------------------------------------------------------------
# Lock
# ---------------------------------------------------------------------------


def test_lock_mutual_exclusion_and_fifo_handoff():
    sim = Simulator()
    lock = Lock(sim)
    order = []

    def proc(name, work):
        yield from lock.acquire(owner=name)
        order.append(("in", name, sim.now))
        yield Compute(work)
        order.append(("out", name, sim.now))
        lock.release()

    sim.spawn(proc("a", 2.0))
    sim.spawn(proc("b", 1.0))
    sim.spawn(proc("c", 1.0))
    sim.run()
    # strict FIFO: a then b then c, no overlap
    assert order == [
        ("in", "a", 0.0),
        ("out", "a", 2.0),
        ("in", "b", 2.0),
        ("out", "b", 3.0),
        ("in", "c", 3.0),
        ("out", "c", 4.0),
    ]
    assert lock.n_acquisitions == 3
    assert not lock.locked


def test_lock_try_acquire():
    sim = Simulator()
    lock = Lock(sim)
    assert lock.try_acquire("x")
    assert not lock.try_acquire("y")
    lock.release()
    assert lock.try_acquire("y")


def test_lock_release_unlocked_raises():
    sim = Simulator()
    lock = Lock(sim)
    with pytest.raises(RuntimeError, match="unlocked"):
        lock.release()


def test_lock_owner_tracking():
    sim = Simulator()
    lock = Lock(sim)

    def proc():
        yield from lock.acquire(owner="me")
        assert lock.owner == "me"
        lock.release()

    sim.spawn(proc())
    sim.run()
    assert lock.owner is None


# ---------------------------------------------------------------------------
# Semaphore
# ---------------------------------------------------------------------------


def test_semaphore_limits_concurrency():
    sim = Simulator()
    sem = Semaphore(sim, 2)
    active = []
    peak = []

    def proc(i):
        yield from sem.acquire()
        active.append(i)
        peak.append(len(active))
        yield Compute(1.0)
        active.remove(i)
        sem.release()

    for i in range(5):
        sim.spawn(proc(i))
    sim.run()
    assert max(peak) == 2
    assert sem.value == 2


def test_semaphore_negative_value_rejected():
    with pytest.raises(ValueError):
        Semaphore(Simulator(), -1)


# ---------------------------------------------------------------------------
# Barrier
# ---------------------------------------------------------------------------


def test_barrier_releases_all_at_last_arrival():
    sim = Simulator()
    bar = Barrier(sim, 3)
    released = []

    def proc(name, delay):
        yield Compute(delay)
        yield from bar.wait()
        released.append((name, sim.now))

    sim.spawn(proc("fast", 1.0))
    sim.spawn(proc("mid", 2.0))
    sim.spawn(proc("slow", 5.0))
    sim.run()
    assert all(t == 5.0 for _, t in released)
    assert len(released) == 3
    assert bar.generations == [5.0]


def test_barrier_is_reusable_across_generations():
    sim = Simulator()
    bar = Barrier(sim, 2)
    times = []

    def proc(delay):
        for phase in range(3):
            yield Compute(delay)
            yield from bar.wait()
            times.append(sim.now)

    sim.spawn(proc(1.0))
    sim.spawn(proc(2.0))
    sim.run()
    # phases complete at the slow process times: 2, 4, 6
    assert times == [2.0, 2.0, 4.0, 4.0, 6.0, 6.0]
    assert bar.generations == [2.0, 4.0, 6.0]


def test_single_party_barrier_never_blocks():
    sim = Simulator()
    bar = Barrier(sim, 1)

    def proc():
        yield Compute(1.0)
        yield from bar.wait()
        yield Compute(1.0)

    p = sim.spawn(proc())
    sim.run()
    assert p.end_time == 2.0


def test_barrier_invalid_parties():
    with pytest.raises(ValueError):
        Barrier(Simulator(), 0)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield Compute(1.0)
            store.put(i)

    def consumer():
        for _ in range(3):
            item = yield from store.get()
            got.append((item, sim.now))

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_store_buffers_when_no_getter():
    sim = Simulator()
    store = Store(sim)

    def producer():
        store.put("a")
        store.put("b")
        yield Compute(0.0)

    sim.spawn(producer())
    sim.run()
    assert len(store) == 2
    assert store.peek_all() == ["a", "b"]


def test_store_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(name):
        item = yield from store.get()
        got.append((name, item))

    def producer():
        yield Compute(1.0)
        store.put(1)
        store.put(2)

    sim.spawn(getter("g1"))
    sim.spawn(getter("g2"))
    sim.spawn(producer())
    sim.run()
    assert got == [("g1", 1), ("g2", 2)]
