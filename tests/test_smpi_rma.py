"""Tests for RMA windows (global work queue substrate)."""

import pytest

from repro.cluster.machine import homogeneous
from repro.sim import Compute, Simulator
from repro.smpi import MpiWorld


def make_world(n_nodes=2, cores=4, ppn=4, seed=0):
    return MpiWorld(Simulator(seed=seed), homogeneous(n_nodes, cores), ppn=ppn)


def test_fetch_and_op_returns_old_value_and_updates():
    world = make_world()
    win = world.create_window(0, {"step": 0})
    got = []

    def main(ctx):
        if ctx.rank == 0:
            old = yield from win.fetch_and_op(ctx, "step", 1)
            got.append(old)
            old = yield from win.fetch_and_op(ctx, "step", 1)
            got.append(old)
        else:
            yield Compute(0.0)

    world.run(main)
    assert got == [0, 1]
    assert win.peek("step") == 2


def test_concurrent_fetch_and_op_values_are_unique():
    """The fundamental property the distributed chunk calculation
    relies on: concurrent atomic increments hand out distinct steps."""
    world = make_world(n_nodes=4, cores=4, ppn=4)
    win = world.create_window(0, {"step": 0})
    seen = []

    def main(ctx):
        for _ in range(10):
            old = yield from win.fetch_and_op(ctx, "step", 1)
            seen.append(old)

    world.run(main)
    assert sorted(seen) == list(range(16 * 10))
    assert win.n_atomics == 160


def test_remote_atomic_costs_more_than_local():
    world = make_world(n_nodes=2, cores=4, ppn=4)
    win = world.create_window(0, {"c": 0})
    finish = {}

    def main(ctx):
        if ctx.rank in (0, 4):  # same node as host vs remote node
            old = yield from win.fetch_and_op(ctx, "c", 1)
            finish[ctx.rank] = ctx.sim.now
        else:
            yield Compute(0.0)

    world.run(main)
    assert finish[4] > finish[0]


def test_atomic_get_does_not_modify():
    world = make_world()
    win = world.create_window(0, {"c": 41})
    got = []

    def main(ctx):
        if ctx.rank == 1:
            value = yield from win.atomic_get(ctx, "c")
            got.append(value)
        else:
            yield Compute(0.0)

    world.run(main)
    assert got == [41]
    assert win.peek("c") == 41


def test_compare_and_swap_semantics():
    world = make_world()
    win = world.create_window(0, {"flag": 0})
    got = []

    def main(ctx):
        if ctx.rank == 0:
            old = yield from win.compare_and_swap(ctx, "flag", expected=0, desired=7)
            got.append(old)  # 0 -> swap happened
            old = yield from win.compare_and_swap(ctx, "flag", expected=0, desired=9)
            got.append(old)  # 7 -> no swap
        else:
            yield Compute(0.0)

    world.run(main)
    assert got == [0, 7]
    assert win.peek("flag") == 7


def test_cas_only_one_winner_under_contention():
    world = make_world(n_nodes=2, cores=4, ppn=4)
    win = world.create_window(0, {"flag": 0})
    winners = []

    def main(ctx):
        old = yield from win.compare_and_swap(
            ctx, "flag", expected=0, desired=ctx.rank + 1
        )
        if old == 0:
            winners.append(ctx.rank)

    world.run(main)
    assert len(winners) == 1
    assert win.peek("flag") == winners[0] + 1


def test_get_put_roundtrip():
    world = make_world()
    win = world.create_window(0, {"data": 0})
    got = []

    def main(ctx):
        if ctx.rank == 5:
            yield from win.put(ctx, "data", 123)
            value = yield from win.get(ctx, "data")
            got.append(value)
        else:
            yield Compute(0.0)

    world.run(main)
    assert got == [123]


def test_unknown_cell_raises():
    world = make_world()
    win = world.create_window(0, {"a": 0})

    def main(ctx):
        if ctx.rank == 0:
            yield from win.fetch_and_op(ctx, "nope", 1)
        else:
            yield Compute(0.0)

    from repro.sim import ProcessFailure

    with pytest.raises(ProcessFailure, match="no cell"):
        world.run(main)


def test_unsupported_op_raises():
    world = make_world()
    win = world.create_window(0, {"a": 0})

    def main(ctx):
        if ctx.rank == 0:
            yield from win.fetch_and_op(ctx, "a", 1, op="xor")
        else:
            yield Compute(0.0)

    from repro.sim import ProcessFailure

    with pytest.raises(ProcessFailure, match="unsupported RMA op"):
        world.run(main)


def test_atomics_serialise_at_target():
    """Two same-time atomics from different ranks must not overlap:
    total elapsed >= 2 * processing time."""
    world = make_world(n_nodes=1, cores=4, ppn=4)
    win = world.create_window(0, {"c": 0})

    def main(ctx):
        yield from win.fetch_and_op(ctx, "c", 1)

    world.run(main)
    per_op = world.costs.mpi.shm_atomic
    assert world.sim.now >= 4 * per_op - 1e-15


def test_invalid_host_rank():
    world = make_world()
    with pytest.raises(ValueError, match="invalid host rank"):
        world.create_window(99, {"a": 0})


# ---------------------------------------------------------------------------
# priced-atomic commit semantics (PR-7 fixes)
# ---------------------------------------------------------------------------


def test_cas_on_commit_fires_for_winner_and_loser():
    """CAS-based protocols can register side effects atomically: the
    ``on_commit(old)`` hook runs inside the critical section whether or
    not the swap won (the callback tells by comparing ``old``)."""
    world = make_world()
    win = world.create_window(0, {"flag": 0})
    observed = []

    def main(ctx):
        if ctx.rank == 0:
            yield from win.compare_and_swap(
                ctx, "flag", expected=0, desired=7,
                on_commit=lambda old: observed.append(("first", old)),
            )
            yield from win.compare_and_swap(
                ctx, "flag", expected=0, desired=9,
                on_commit=lambda old: observed.append(("second", old)),
            )
        else:
            yield Compute(0.0)

    world.run(main)
    assert observed == [("first", 0), ("second", 7)]
    assert win.peek("flag") == 7


def _atomic_pricing(world, origin_rank, host_rank=0):
    """The (processing, latency) the cost model charges an atomic."""
    mpi = world.costs.mpi
    from repro.cluster.interconnect import Tier

    tier = world.interconnect.distance(origin_rank, host_rank)
    remote = tier is Tier.NETWORK
    latency = world.cluster.network_latency if remote else 0.0
    processing = (
        mpi.rma_atomic if remote else mpi.shm_atomic
    ) + mpi.tier_atomic_penalty(tier)
    return processing, latency


def test_crash_during_request_latency_leaves_no_trace():
    """An origin that dies before its atomic is retired must not
    mutate the cell, count as an atomic, or inflate the placement
    counters with service time the target never spent (regression:
    ``total_atomic_time_s`` used to accrue before the latency yield)."""
    from repro.sim import Timeout

    world = make_world(n_nodes=2, cores=4, ppn=4)
    win = world.create_window(0, {"c": 0})

    def main(ctx):
        if ctx.rank == 4:  # network-remote origin
            yield from win.fetch_and_op(ctx, "c", 1)
        else:
            yield Compute(0.0)

    processes = world.launch(main)
    _, latency = _atomic_pricing(world, 4)
    assert latency > 0

    def killer():
        yield Timeout(latency / 2)  # mid-flight on the request leg
        assert world.sim.kill(processes[4])

    world.sim.spawn(killer())
    world.sim.run()
    assert win.peek("c") == 0
    assert win.n_atomics == 0
    assert win.total_atomic_time_s == 0.0


def test_crash_during_return_latency_still_commits_and_counts():
    """Once the target retires the atomic the commit is durable: a
    crash while the result is in flight keeps the cell update, the
    statistics, and the ``on_commit`` side effect."""
    from repro.sim import Timeout

    world = make_world(n_nodes=2, cores=4, ppn=4)
    win = world.create_window(0, {"c": 0})
    committed = []

    def main(ctx):
        if ctx.rank == 4:
            yield from win.fetch_and_op(
                ctx, "c", 1, on_commit=lambda old: committed.append(old)
            )
        else:
            yield Compute(0.0)

    processes = world.launch(main)
    processing, latency = _atomic_pricing(world, 4)

    def killer():
        # past request leg + critical section, mid return leg
        yield Timeout(latency + processing + latency / 2)
        assert world.sim.kill(processes[4])

    world.sim.spawn(killer())
    world.sim.run()
    assert win.peek("c") == 1
    assert committed == [0]
    assert win.n_atomics == 1
    assert win.total_atomic_time_s == pytest.approx(processing + 2.0 * latency)
