"""Tests for shared-memory windows with lock polling (local work queue)."""

import pytest

from repro.cluster.costs import CostModel
from repro.cluster.machine import homogeneous
from repro.sim import Compute, ProcessFailure, Simulator
from repro.smpi import MpiWorld


def make_world(n_nodes=1, cores=4, ppn=4, seed=0, costs=None):
    return MpiWorld(
        Simulator(seed=seed),
        homogeneous(n_nodes, cores),
        ppn=ppn,
        costs=costs or CostModel(),
    )


def test_lock_provides_mutual_exclusion():
    world = make_world()
    shm = world.create_shared_window(0, {"counter": 0})
    critical = []

    def main(ctx):
        for _ in range(5):
            yield from shm.lock(ctx)
            value = yield from shm.load(ctx, "counter")
            critical.append(("in", ctx.rank))
            yield Compute(1e-6)
            yield from shm.store(ctx, "counter", value + 1)
            critical.append(("out", ctx.rank))
            yield from shm.unlock(ctx)

    world.run(main)
    # no lost updates
    assert shm.peek("counter") == 20
    # strictly alternating in/out (no nesting = mutual exclusion)
    for i in range(0, len(critical), 2):
        assert critical[i][0] == "in"
        assert critical[i + 1][0] == "out"
        assert critical[i][1] == critical[i + 1][1]


def test_unlocked_access_raises_data_race():
    world = make_world()
    shm = world.create_shared_window(0, {"c": 0})

    def main(ctx):
        if ctx.rank == 0:
            yield from shm.load(ctx, "c")
        else:
            yield Compute(0.0)

    with pytest.raises(ProcessFailure, match="data race"):
        world.run(main)


def test_store_requires_lock_too():
    world = make_world()
    shm = world.create_shared_window(0, {"c": 0})

    def main(ctx):
        if ctx.rank == 0:
            yield from shm.store(ctx, "c", 1)
        else:
            yield Compute(0.0)

    with pytest.raises(ProcessFailure, match="data race"):
        world.run(main)


def test_access_requires_lock_ownership_not_just_held():
    """Rank B mutating the window while rank A holds the lock is a data
    race even though *a* lock is held — the ownership check must compare
    against the calling rank."""
    world = make_world()
    shm = world.create_shared_window(0, {"c": 0})

    def main(ctx):
        if ctx.rank == 0:
            yield from shm.lock(ctx)
            yield Compute(1e-3)  # hold the lock while rank 1 intrudes
            yield from shm.unlock(ctx)
        elif ctx.rank == 1:
            yield Compute(1e-4)  # let rank 0 acquire first
            assert shm.locked  # held — but not by us
            yield from shm.store(ctx, "c", 42)
        else:
            yield Compute(0.0)

    with pytest.raises(ProcessFailure, match="rank1 while rank0 holds"):
        world.run(main)


def test_unlock_requires_ownership():
    world = make_world()
    shm = world.create_shared_window(0, {"c": 0})

    def main(ctx):
        if ctx.rank == 0:
            yield from shm.lock(ctx)
            yield Compute(1e-3)
            yield from shm.unlock(ctx)
        elif ctx.rank == 1:
            yield Compute(1e-4)
            yield from shm.unlock(ctx)  # not ours to release
        else:
            yield Compute(0.0)

    with pytest.raises(ProcessFailure, match="data race"):
        world.run(main)


def test_contention_inflates_poll_wait_and_attempts():
    """Under contention the polling model must show (a) retries and
    (b) nonzero poll wait — the root cause of the paper's X+SS result."""
    costs = CostModel().with_overrides(**{"mpi.shm_poll_interval": 50e-6})
    world = make_world(cores=8, ppn=8, costs=costs)
    shm = world.create_shared_window(0, {"c": 0})

    def main(ctx):
        for _ in range(20):
            yield from shm.lock(ctx)
            value = yield from shm.load(ctx, "c")
            yield Compute(2e-6)  # hold the lock a while
            yield from shm.store(ctx, "c", value + 1)
            yield from shm.unlock(ctx)

    world.run(main)
    assert shm.peek("c") == 160
    stats = shm.contention_stats()
    assert stats["acquisitions"] == 160
    assert stats["attempts"] > stats["acquisitions"]  # retries happened
    assert stats["total_poll_wait"] > 0.0
    assert stats["max_attempts"] >= 2


def test_uncontended_lock_is_cheap():
    world = make_world(cores=1, ppn=1)
    shm = world.create_shared_window(0, {"c": 0})

    def main(ctx):
        for _ in range(10):
            yield from shm.lock(ctx)
            yield from shm.unlock(ctx)

    world.run(main)
    stats = shm.contention_stats()
    assert stats["attempts"] == stats["acquisitions"] == 10
    assert stats["total_poll_wait"] == 0.0


def test_poll_interval_scales_contention_cost():
    """Doubling the polling interval should slow a contended run."""
    times = {}
    for label, interval in (("short", 10e-6), ("long", 200e-6)):
        costs = CostModel().with_overrides(**{"mpi.shm_poll_interval": interval})
        world = make_world(cores=8, ppn=8, seed=1, costs=costs)
        shm = world.create_shared_window(0, {"c": 0})

        def main(ctx):
            for _ in range(10):
                yield from shm.lock(ctx)
                yield Compute(2e-6)
                yield from shm.unlock(ctx)

        world.run(main)
        times[label] = world.sim.now
    assert times["long"] > times["short"]


def test_win_sync_charges_cost_and_counts():
    world = make_world()
    shm = world.create_shared_window(0, {"c": 0})

    def main(ctx):
        if ctx.rank == 0:
            yield from shm.sync(ctx)
        else:
            yield Compute(0.0)

    procs = world.run(main)
    assert shm.n_syncs == 1
    assert procs[0].overhead_time == pytest.approx(world.costs.mpi.shm_win_sync)


def test_atomic_fetch_add_without_lock():
    world = make_world()
    shm = world.create_shared_window(0, {"step": 0})
    olds = []

    def main(ctx):
        old = yield from shm.atomic_fetch_add(ctx, "step", 1)
        olds.append(old)

    world.run(main)
    assert sorted(olds) == [0, 1, 2, 3]
    assert shm.peek("step") == 4


def test_state_dict_with_access_charging():
    world = make_world()
    shm = world.create_shared_window(0, {"n_ranges": 0})
    shm.state["queue"] = []

    def main(ctx):
        yield from shm.lock(ctx)
        yield from shm.access(ctx, n=2)
        shm.state["queue"].append((ctx.rank, ctx.rank + 10))
        yield from shm.store(ctx, "n_ranges", len(shm.state["queue"]))
        yield from shm.unlock(ctx)

    world.run(main)
    assert len(shm.state["queue"]) == 4
    assert shm.peek("n_ranges") == 4


def test_one_shared_window_per_node():
    world = make_world()
    world.create_shared_window(0, {"a": 0})
    with pytest.raises(RuntimeError, match="already exists"):
        world.create_shared_window(0, {"b": 0})


def test_lock_polling_is_deterministic_given_seed():
    def run(seed):
        costs = CostModel().with_overrides(**{"mpi.shm_poll_interval": 50e-6})
        world = make_world(cores=8, ppn=8, seed=seed, costs=costs)
        shm = world.create_shared_window(0, {"c": 0})

        def main(ctx):
            for _ in range(10):
                yield from shm.lock(ctx)
                yield Compute(1e-6)
                yield from shm.unlock(ctx)

        world.run(main)
        return world.sim.now

    assert run(3) == run(3)
    assert run(3) != run(4)  # different jitter draws
