"""Tests for the simulated MPI world: ranks, p2p, barrier."""

import pytest

from repro.cluster.machine import homogeneous
from repro.sim import Compute, Simulator
from repro.smpi import MpiWorld


def make_world(n_nodes=2, cores=4, ppn=None, seed=0):
    sim = Simulator(seed=seed)
    cluster = homogeneous(n_nodes, cores)
    return MpiWorld(sim, cluster, ppn=ppn)


# ---------------------------------------------------------------------------
# world construction and rank metadata
# ---------------------------------------------------------------------------


def test_world_size_and_placement():
    world = make_world(n_nodes=3, cores=4, ppn=4)
    assert world.size == 12
    assert world.contexts[0].node == 0
    assert world.contexts[4].node == 1
    assert world.contexts[11].node == 2


def test_ppn_defaults_to_core_count():
    world = make_world(n_nodes=2, cores=8)
    assert world.ppn == 8
    assert world.size == 16


def test_local_rank_and_node_ranks():
    world = make_world(n_nodes=2, cores=4, ppn=4)
    ctx = world.contexts[5]
    assert ctx.node == 1
    assert ctx.local_rank == 1
    assert ctx.node_ranks == [4, 5, 6, 7]
    assert not ctx.is_node_leader
    assert world.contexts[4].is_node_leader


def test_rank_name_contains_coordinates():
    world = make_world()
    assert world.contexts[5].name() == "rank5(n1.c1)"


# ---------------------------------------------------------------------------
# point-to-point
# ---------------------------------------------------------------------------


def test_send_recv_roundtrip():
    world = make_world()
    results = []

    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, tag=7, payload={"x": 42})
        elif ctx.rank == 1:
            data = yield from ctx.recv(0, tag=7)
            results.append((data, ctx.sim.now))
        else:
            yield Compute(0.0)

    world.run(main)
    assert results[0][0] == {"x": 42}
    assert results[0][1] > 0.0  # transfer took simulated time


def test_intra_node_message_faster_than_inter_node():
    times = {}
    for label, dest in (("intra", 1), ("inter", 4)):
        world = make_world(n_nodes=2, cores=4, ppn=4)

        def main(ctx, dest=dest, label=label):
            if ctx.rank == 0:
                yield from ctx.send(dest, tag=1, payload=None)
            elif ctx.rank == dest:
                yield from ctx.recv(0, tag=1)
                times[label] = ctx.sim.now
            else:
                yield Compute(0.0)

        world.run(main)
    assert times["intra"] < times["inter"]


def test_large_message_pays_rendezvous_and_bandwidth():
    times = {}
    for label, nbytes in (("small", 64), ("large", 4 * 1024 * 1024)):
        world = make_world()

        def main(ctx, nbytes=nbytes, label=label):
            if ctx.rank == 0:
                yield from ctx.send(4, tag=1, payload=None, nbytes=nbytes)
            elif ctx.rank == 4:
                yield from ctx.recv(0, tag=1)
                times[label] = ctx.sim.now
            else:
                yield Compute(0.0)

        world.run(main)
    # 4 MiB at 12.5 GB/s is ~335 us >> the small-message time
    assert times["large"] > times["small"] * 10


def test_tag_matching_no_overtaking():
    world = make_world()
    got = []

    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, tag=5, payload="first-5")
            yield from ctx.send(1, tag=9, payload="only-9")
            yield from ctx.send(1, tag=5, payload="second-5")
        elif ctx.rank == 1:
            got.append((yield from ctx.recv(0, tag=9)))
            got.append((yield from ctx.recv(0, tag=5)))
            got.append((yield from ctx.recv(0, tag=5)))
        else:
            yield Compute(0.0)

    world.run(main)
    assert got == ["only-9", "first-5", "second-5"]


def test_recv_any_reports_source():
    world = make_world()
    got = []

    def main(ctx):
        if ctx.rank == 0:
            for _ in range(world.size - 1):
                source, payload = yield from ctx.recv_any(tag=3)
                got.append((source, payload))
        else:
            yield Compute(ctx.rank * 0.001)  # stagger arrivals
            yield from ctx.send(0, tag=3, payload=ctx.rank * 10)

    world.run(main)
    assert sorted(got) == [(r, r * 10) for r in range(1, world.size)]
    # staggered sends arrive in rank order
    assert got == sorted(got)


def test_send_to_invalid_rank_raises():
    world = make_world()

    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.send(999, tag=0, payload=None)
        else:
            yield Compute(0.0)

    from repro.sim import ProcessFailure

    with pytest.raises(ProcessFailure, match="invalid rank"):
        world.run(main)


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------


def test_barrier_synchronises_all_ranks():
    world = make_world()
    after = []

    def main(ctx):
        yield Compute(ctx.rank * 0.5)
        yield from ctx.barrier()
        after.append(ctx.sim.now)

    world.run(main)
    slowest = (world.size - 1) * 0.5
    assert all(t >= slowest for t in after)
    assert len(after) == world.size


def test_barrier_charges_log_tree_overhead():
    world = make_world(n_nodes=2, cores=4, ppn=4)  # size 8 -> 3 stages

    def main(ctx):
        yield from ctx.barrier()

    procs = world.run(main)
    stage = world.costs.mpi.collective_stage
    assert procs[0].overhead_time == pytest.approx(3 * stage)


# ---------------------------------------------------------------------------
# deadlock detection
# ---------------------------------------------------------------------------


def test_unmatched_recv_detected_as_deadlock():
    world = make_world()

    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.recv(1, tag=1)  # never sent
        else:
            yield Compute(0.0)

    with pytest.raises(RuntimeError, match="deadlock"):
        world.run(main)
