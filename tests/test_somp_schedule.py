"""Tests for OpenMP schedule parsing and technique mapping."""

import pytest

from repro.somp import ScheduleSpec, UnsupportedScheduleError


def test_parse_plain_kind():
    spec = ScheduleSpec.parse("static")
    assert spec.kind == "static"
    assert spec.chunk is None
    assert spec.pinned


def test_parse_kind_with_chunk():
    spec = ScheduleSpec.parse("dynamic,4")
    assert spec.kind == "dynamic"
    assert spec.chunk == 4
    assert not spec.pinned


def test_parse_full_clause_syntax():
    spec = ScheduleSpec.parse("schedule(guided,2)")
    assert spec.kind == "guided"
    assert spec.chunk == 2


def test_parse_whitespace_and_case():
    spec = ScheduleSpec.parse("  Dynamic , 1 ".lower())
    assert spec.kind == "dynamic"
    assert spec.chunk == 1


def test_parse_rejects_unknown_kind():
    with pytest.raises(UnsupportedScheduleError, match="unknown schedule"):
        ScheduleSpec.parse("bogus")


def test_parse_rejects_bad_chunk():
    with pytest.raises(UnsupportedScheduleError, match="bad chunk"):
        ScheduleSpec.parse("dynamic,x")
    with pytest.raises(UnsupportedScheduleError, match="chunk must be"):
        ScheduleSpec.parse("dynamic,0")


def test_parse_rejects_extra_parts():
    with pytest.raises(UnsupportedScheduleError, match="malformed"):
        ScheduleSpec.parse("dynamic,1,2")


def test_technique_mapping_paper_table1():
    assert ScheduleSpec.from_technique("STATIC") == ScheduleSpec("static")
    assert ScheduleSpec.from_technique("SS") == ScheduleSpec("dynamic", 1)
    assert ScheduleSpec.from_technique("GSS") == ScheduleSpec("guided", 1)


def test_extension_techniques_allowed_by_default():
    assert ScheduleSpec.from_technique("TSS").kind == "tss"
    assert ScheduleSpec.from_technique("FAC2").kind == "fac2"
    assert ScheduleSpec.from_technique("WF").kind == "wf"
    assert ScheduleSpec.from_technique("RND").kind == "random"


def test_intel_runtime_rejects_extensions():
    """The restriction that shapes the paper's figure series."""
    for name in ("TSS", "FAC2", "WF", "RND"):
        with pytest.raises(UnsupportedScheduleError, match="Intel OpenMP"):
            ScheduleSpec.from_technique(name, extensions=False)
    # the standard three still work
    for name in ("STATIC", "SS", "GSS"):
        ScheduleSpec.from_technique(name, extensions=False)


def test_unmappable_technique_raises():
    with pytest.raises(UnsupportedScheduleError, match="no OpenMP schedule"):
        ScheduleSpec.from_technique("AWF-B")


def test_str_roundtrip():
    assert str(ScheduleSpec("guided", 1)) == "schedule(guided,1)"
    assert str(ScheduleSpec("static")) == "schedule(static)"
    assert ScheduleSpec.parse(str(ScheduleSpec("tss"))) == ScheduleSpec("tss")


def test_is_extension_flag():
    assert not ScheduleSpec("static").is_extension
    assert ScheduleSpec("fac2").is_extension
