"""Tests for the simulated OpenMP team (worksharing, barriers, nowait)."""

import pytest

from repro.cluster.costs import CostModel
from repro.core.trace import SYNC, Trace
from repro.sim import Compute, Simulator
from repro.somp import OmpTeam, ScheduleSpec

COSTS = CostModel()


def run_team(
    n_threads,
    chunks,
    spec,
    body_time=None,
    nowait=False,
    trace=None,
    seed=0,
):
    """Drive a team through ``chunks`` = [(start, size), ...] from a
    master process; returns (sim, team, executed ranges per thread)."""
    sim = Simulator(seed=seed)
    executed = []

    if body_time is None:
        def body_time(start, size, tid):
            return 1e-3 * size

    def tracked_body(start, size, tid):
        executed.append((tid, start, size))
        return body_time(start, size, tid)

    team = OmpTeam(sim, n_threads, COSTS, name="T", trace=trace)
    phases = []

    def master():
        for start, size in chunks:
            phase = yield from team.parallel_for(
                start, size, spec, tracked_body, nowait=nowait
            )
            phases.append(phase)
        if nowait:
            for phase in phases:
                yield from team.quiesce(phase)
        team.shutdown()

    sim.spawn(master(), name="master")
    sim.run()
    return sim, team, executed


def coverage(executed):
    covered = set()
    for _tid, start, size in executed:
        for i in range(start, start + size):
            assert i not in covered, f"iteration {i} executed twice"
            covered.add(i)
    return covered


# ---------------------------------------------------------------------------
# correctness of each schedule
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "spec",
    [
        ScheduleSpec("static"),
        ScheduleSpec("static", 4),
        ScheduleSpec("dynamic", 1),
        ScheduleSpec("dynamic", 8),
        ScheduleSpec("guided", 1),
        ScheduleSpec("tss"),
        ScheduleSpec("fac2"),
        ScheduleSpec("tfss"),
        ScheduleSpec("random"),
    ],
)
def test_every_schedule_executes_all_iterations_exactly_once(spec):
    _, _, executed = run_team(4, [(0, 100), (100, 57)], spec)
    assert coverage(executed) == set(range(157))


def test_static_no_chunk_gives_one_slice_per_thread():
    _, _, executed = run_team(4, [(0, 100)], ScheduleSpec("static"))
    assert len(executed) == 4
    sizes = sorted(size for _, _, size in executed)
    assert sizes == [25, 25, 25, 25]
    # pinned: thread t gets the t-th contiguous slice
    by_tid = {tid: start for tid, start, _ in executed}
    assert by_tid == {0: 0, 1: 25, 2: 50, 3: 75}


def test_static_chunked_round_robin():
    _, _, executed = run_team(2, [(0, 8)], ScheduleSpec("static", 2))
    got = {(tid, start) for tid, start, _ in executed}
    assert got == {(0, 0), (1, 2), (0, 4), (1, 6)}


def test_dynamic_chunk_sizes():
    _, _, executed = run_team(4, [(0, 30)], ScheduleSpec("dynamic", 8))
    sizes = sorted((size for _, _, size in executed), reverse=True)
    assert sizes == [8, 8, 8, 6]


def test_guided_sizes_decrease():
    _, _, executed = run_team(4, [(0, 1000)], ScheduleSpec("guided", 1))
    ordered = sorted(executed, key=lambda e: e[1])
    sizes = [size for _, _, size in ordered]
    assert sizes[0] == 250
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))


def test_implicit_barrier_blocks_until_slowest_thread():
    """Reproduces the Fig. 2 mechanism: with pinned static and one slow
    slice, the parallel_for cannot return before the slow thread ends."""

    def body_time(start, size, tid):
        return 1.0 if start >= 75 else 0.01  # last slice is slow

    sim, _, _ = run_team(4, [(0, 100)], ScheduleSpec("static"), body_time)
    assert sim.now >= 1.0


def test_dynamic_schedule_balances_unequal_iterations():
    """Self-scheduling lets fast threads take more sub-chunks."""

    def body_time(start, size, tid):
        return 1.0 * size if start < 25 else 0.01 * size

    _, _, executed = run_team(4, [(0, 100)], ScheduleSpec("dynamic", 1), body_time)
    per_thread = {}
    for tid, _, size in executed:
        per_thread[tid] = per_thread.get(tid, 0) + size
    # the threads stuck with the expensive region execute fewer iterations
    assert max(per_thread.values()) > min(per_thread.values())


def test_barrier_sync_time_recorded_in_trace():
    trace = Trace()

    def body_time(start, size, tid):
        return 1.0 if start == 0 else 0.1  # thread 0's pinned slice is slow

    run_team(4, [(0, 4)], ScheduleSpec("static"), body_time, trace=trace)
    sync = trace.sync_time_per_worker()
    # fast threads waited, the slowest did not
    waits = [sync.get(f"T.t{t}", 0.0) for t in range(4)]
    assert waits[0] == pytest.approx(0.0, abs=1e-9)
    assert all(w > 0.5 for w in waits[1:])


def test_fork_paid_once_for_hot_team():
    sim, team, _ = run_team(4, [(0, 10), (10, 10), (20, 10)], ScheduleSpec("static"))
    # master overhead includes exactly one fork
    master = next(p for p in sim.processes if p.name == "master")
    fork = COSTS.omp.fork
    assert master.overhead_time >= fork
    assert master.overhead_time < 2 * fork + 1e-4


def test_team_shutdown_terminates_threads():
    sim, team, _ = run_team(3, [(0, 10)], ScheduleSpec("static"))
    assert all(not t.alive for t in team.threads)


def test_shutdown_is_idempotent_and_blocks_further_use():
    sim = Simulator()
    team = OmpTeam(sim, 2, COSTS)

    def master():
        team.shutdown()
        team.shutdown()
        try:
            yield from team.parallel_for(0, 1, ScheduleSpec("static"), lambda *a: 0.0)
        except RuntimeError as exc:
            assert "shut down" in str(exc)
            return
        raise AssertionError("expected RuntimeError")

    sim.spawn(master())
    sim.run()


def test_single_thread_team():
    _, _, executed = run_team(1, [(0, 20)], ScheduleSpec("guided", 1))
    assert coverage(executed) == set(range(20))
    assert all(tid == 0 for tid, _, _ in executed)


def test_invalid_team_size():
    with pytest.raises(ValueError):
        OmpTeam(Simulator(), 0, COSTS)


# ---------------------------------------------------------------------------
# nowait + self-fetch region
# ---------------------------------------------------------------------------


def test_nowait_master_returns_before_slowest():
    return_times = []

    def body_time(start, size, tid):
        # thread 3's static slice is very slow
        return 5.0 if start >= 75 else 0.01

    sim = Simulator()
    team = OmpTeam(sim, 4, COSTS, name="T")

    def master():
        phase = yield from team.parallel_for(
            0, 100, ScheduleSpec("static"), body_time, nowait=True
        )
        return_times.append(sim.now)
        yield from team.quiesce(phase)
        return_times.append(sim.now)
        team.shutdown()

    sim.spawn(master(), name="master")
    sim.run()
    assert return_times[0] < 1.0  # master's own slice was fast
    assert return_times[1] >= 5.0  # quiesce waited for the slow thread


def test_selffetch_region_executes_all_chunks():
    sim = Simulator()
    team = OmpTeam(sim, 4, COSTS, name="T")
    chunks = [(0, 40), (40, 40), (80, 20)]
    executed = []
    state = {"i": 0}

    def fetch():
        yield Compute(1e-5)  # the "MPI" call
        if state["i"] >= len(chunks):
            return None
        chunk = chunks[state["i"]]
        state["i"] += 1
        return chunk

    def body_time(start, size, tid):
        executed.append((tid, start, size))
        return 1e-4 * size

    def master():
        phase = yield from team.parallel_region_selffetch(
            ScheduleSpec("dynamic", 4), body_time, fetch
        )
        assert phase.n_fetches == len(chunks) + 1  # +1 exhausted probe
        team.shutdown()

    sim.spawn(master(), name="master")
    sim.run()
    assert coverage(executed) == set(range(100))


def test_selffetch_serialises_mpi_calls():
    """Only one thread may be inside fetch() at a time."""
    sim = Simulator()
    team = OmpTeam(sim, 8, COSTS, name="T")
    inside = {"count": 0, "max": 0}
    state = {"i": 0}

    def fetch():
        inside["count"] += 1
        inside["max"] = max(inside["max"], inside["count"])
        yield Compute(1e-4)
        inside["count"] -= 1
        if state["i"] >= 10:
            return None
        state["i"] += 1
        return (state["i"] * 10 - 10, 10)

    def master():
        yield from team.parallel_region_selffetch(
            ScheduleSpec("dynamic", 1), lambda s, z, t: 1e-5 * z, fetch
        )
        team.shutdown()

    sim.spawn(master(), name="master")
    sim.run()
    assert inside["max"] == 1


def test_phase_stats_accounting():
    sim, team, executed = run_team(4, [(0, 64)], ScheduleSpec("dynamic", 4))
    stats = team.stats()
    assert stats["phases"] == 1
    assert stats["total_grabs"] == 16
    phase = team.phases[0]
    assert phase.executed == 64
    assert sum(phase.executed_per_thread.values()) == 64
