"""Unit tests for the DLS technique calculators (repro.core.techniques)."""

import math

import numpy as np
import pytest

from repro.core import (
    IterationProfile,
    TechniqueError,
    get_technique,
    list_techniques,
    unroll,
    verify_schedule,
)
from repro.core.chunking import Chunk, ScheduleError, chunk_sizes
from repro.core.techniques import (
    INTEL_OPENMP_SUPPORTED,
    PAPER_TECHNIQUES,
    TECHNIQUES,
)

PROFILE = IterationProfile(mu=1.0, sigma=0.3, h=1e-6)
ALL_NAMES = sorted(TECHNIQUES)


def make_calc(name, n, p, seed=0):
    tech = get_technique(name)
    return tech.make(
        n,
        p,
        profile=PROFILE,
        weights=None,
        rng=np.random.default_rng(seed),
    )


# ---------------------------------------------------------------------------
# registry and metadata
# ---------------------------------------------------------------------------


def test_registry_contains_paper_techniques():
    for name in PAPER_TECHNIQUES:
        assert name in TECHNIQUES


def test_get_technique_case_insensitive():
    assert get_technique("gss").name == "GSS"
    assert get_technique(" fac2 ").name == "FAC2"
    assert get_technique("mfsc").name == "mFSC"


def test_get_technique_unknown_raises():
    with pytest.raises(TechniqueError, match="unknown DLS technique"):
        get_technique("nope")


def test_table1_openmp_clause_mapping():
    """The paper's Table 1: STATIC/SS/GSS map onto OpenMP clauses."""
    assert get_technique("STATIC").openmp_clause == "schedule(static)"
    assert get_technique("SS").openmp_clause == "schedule(dynamic,1)"
    assert get_technique("GSS").openmp_clause == "schedule(guided,1)"
    # TSS/FAC2 exist only via the LaPeSD-libGOMP extension (paper Sec. 2)
    assert get_technique("TSS").openmp_clause is None
    assert get_technique("TSS").openmp_extension_clause is not None
    assert get_technique("FAC2").openmp_clause is None
    assert get_technique("FAC2").openmp_extension_clause is not None


def test_intel_supported_subset():
    assert set(INTEL_OPENMP_SUPPORTED) == {"STATIC", "SS", "GSS"}


def test_list_techniques_rows_complete():
    rows = list_techniques()
    names = {row["name"] for row in rows}
    assert names == set(TECHNIQUES)
    for row in rows:
        assert row["description"]


# ---------------------------------------------------------------------------
# coverage invariants for every technique
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize(
    "n,p",
    [(1, 1), (1, 4), (7, 3), (100, 4), (1000, 16), (1024, 8), (999, 7)],
)
def test_unroll_covers_iteration_space(name, n, p):
    calc = make_calc(name, n, p)
    chunks = unroll(calc)
    verify_schedule(chunks, n)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_zero_iterations_yields_no_chunks(name):
    calc = make_calc(name, 0, 4)
    assert calc.size_at(0, pe=0) == 0


@pytest.mark.parametrize("name", ALL_NAMES)
def test_sizes_always_positive_until_exhaustion(name):
    calc = make_calc(name, 500, 5)
    step = 0
    total = 0
    while total < 500:
        size = calc.size_at(step, pe=step % 5)
        assert size >= 1
        total += min(size, 500 - total)
        step += 1
    assert total == 500


# ---------------------------------------------------------------------------
# technique-specific formulas
# ---------------------------------------------------------------------------


def test_static_chunk_sizes():
    calc = make_calc("STATIC", 100, 4)
    assert calc.sequence() == [25, 25, 25, 25]
    assert calc.total_steps() == 4


def test_static_uneven_division():
    calc = make_calc("STATIC", 10, 3)
    assert calc.sequence() == [4, 4, 2]


def test_ss_all_ones():
    calc = make_calc("SS", 12, 4)
    assert calc.sequence() == [1] * 12
    assert calc.total_steps() == 12
    # O(1) paths
    assert calc.size_at(11) == 1
    assert calc.size_at(12) == 0
    assert calc.start_at(5) == 5


def test_gss_halving_pattern():
    # classic GSS example: N=100, P=4 -> 25, 19, 15, 11, 8, 6, 5, 3, 3, 2, 1x3
    calc = make_calc("GSS", 100, 4)
    seq = calc.sequence()
    assert seq[0] == 25
    assert seq[1] == math.ceil(75 / 4) == 19
    assert sum(seq) == 100
    # strictly non-increasing
    assert all(a >= b for a, b in zip(seq, seq[1:]))


def test_gss_chunk_is_ceil_remaining_over_p():
    calc = make_calc("GSS", 1000, 8)
    seq = calc.sequence()
    remaining = 1000
    for size in seq:
        expected = -(-remaining // 8)
        assert size == min(expected, remaining)
        remaining -= size
    assert remaining == 0


def test_tss_linear_decrement():
    n, p = 1000, 4
    calc = make_calc("TSS", n, p)
    seq = calc.sequence()
    first = math.ceil(n / (2 * p))  # 125
    assert seq[0] == first
    # linearly decreasing by ~delta each step
    diffs = [a - b for a, b in zip(seq, seq[1:-1] or seq[1:])]
    assert all(d >= 0 for d in diffs)
    # delta should be roughly constant (+-1 from rounding)
    if len(diffs) > 2:
        assert max(diffs) - min(diffs) <= 1
    assert sum(seq) == n


def test_tss_last_chunk_at_least_one():
    calc = make_calc("TSS", 50, 8)
    assert all(s >= 1 for s in calc.sequence())


def test_fac2_halves_each_batch():
    n, p = 1024, 4
    calc = make_calc("FAC2", n, p)
    seq = calc.sequence()
    # first batch: ceil(1024/8) = 128 per chunk, 4 chunks
    assert seq[:4] == [128, 128, 128, 128]
    # second batch: remaining 512 -> 64 each
    assert seq[4:8] == [64, 64, 64, 64]
    assert sum(seq) == n


def test_fac2_initial_chunk_is_half_of_gss():
    """Paper Sec. 2: 'The initial chunk size of FAC2 is half of the
    initial chunk size of GSS.'"""
    n, p = 4096, 8
    fac2 = make_calc("FAC2", n, p).sequence()[0]
    gss = make_calc("GSS", n, p).sequence()[0]
    assert fac2 == gss / 2


def test_fac_with_zero_sigma_first_batch_is_static_like():
    prof = IterationProfile(mu=1.0, sigma=0.0)
    calc = get_technique("FAC").make(1000, 4, profile=prof)
    seq = calc.sequence()
    # x -> 1 for batch 0: chunk = N/P
    assert seq[0] == 250


def test_fac_larger_sigma_gives_smaller_first_batch():
    small = get_technique("FAC").make(
        10000, 8, profile=IterationProfile(mu=1.0, sigma=0.1)
    )
    large = get_technique("FAC").make(
        10000, 8, profile=IterationProfile(mu=1.0, sigma=2.0)
    )
    assert large.sequence()[0] < small.sequence()[0]


def test_fac_requires_profile():
    with pytest.raises(TechniqueError, match="IterationProfile"):
        get_technique("FAC").make(100, 4)


def test_fac_batches_have_equal_chunks():
    calc = get_technique("FAC").make(5000, 5, profile=PROFILE)
    seq = calc.sequence()
    for batch_start in range(0, len(seq) - 5, 5):
        batch = seq[batch_start : batch_start + 5]
        assert len(set(batch)) == 1


def test_tfss_batch_means_of_tss():
    n, p = 2000, 4
    tss = make_calc("TSS", n, p)
    tfss = make_calc("TFSS", n, p)
    tss_seq = tss.sequence()
    tfss_seq = tfss.sequence()
    # first TFSS batch chunk ~ mean of first p TSS chunks
    expected = round(sum(tss_seq[:p]) / p)
    assert abs(tfss_seq[0] - expected) <= 1


def test_fsc_formula():
    n, p = 100000, 10
    prof = IterationProfile(mu=1e-3, sigma=2e-4, h=1e-5)
    calc = get_technique("FSC").make(n, p, profile=prof)
    expected = (
        (math.sqrt(2) * n * prof.h) / (prof.sigma * p * math.sqrt(math.log(p)))
    ) ** (2 / 3)
    assert calc.sequence()[0] == math.ceil(expected)


def test_fsc_zero_sigma_falls_back_to_static():
    prof = IterationProfile(mu=1.0, sigma=0.0)
    calc = get_technique("FSC").make(100, 4, profile=prof)
    assert calc.sequence()[0] == 25


def test_mfsc_fixed_and_profiling_free():
    calc = get_technique("mFSC").make(4096, 8, weights=None)
    seq = calc.sequence()
    assert len(set(seq[:-1])) == 1  # fixed size except the clipped tail
    assert sum(seq) == 4096


def test_tap_smaller_than_gss():
    """Tapering subtracts a variance margin from the GSS chunk."""
    n, p = 10000, 8
    prof = IterationProfile(mu=1.0, sigma=0.5)
    tap = get_technique("TAP").make(n, p, profile=prof)
    gss = make_calc("GSS", n, p)
    assert tap.size_at(0) < gss.size_at(0)
    # size_at consumes work (scheduled-count protocol) — unroll fresh
    fresh = get_technique("TAP").make(n, p, profile=prof)
    verify_schedule(unroll(fresh), n)


def test_tap_estimates_variance_at_runtime():
    """TAP's margin follows record() feedback: reporting highly variable
    iteration times shrinks later chunks below the zero-variance run."""
    n, p = 100000, 8
    noisy = get_technique("TAP").make(n, p)
    flat = get_technique("TAP").make(n, p)
    for step, times in ((0, 1e-4), (1, 9e-3)):
        size = noisy.size_at(step)
        noisy.record(0, size, compute_time=times * size)
        size_f = flat.size_at(step)
        flat.record(0, size_f, compute_time=1e-4 * size_f)
    assert noisy.cov > flat.cov == 0.0
    assert noisy.size_at(2) < flat.size_at(2)


def test_wf_respects_weights():
    weights = [2.0, 1.0, 1.0, 1.0]  # PE0 twice as fast
    calc = get_technique("WF").make(1000, 4, weights=weights)
    s0 = calc.size_at(0, pe=0)
    calc2 = get_technique("WF").make(1000, 4, weights=weights)
    s1 = calc2.size_at(0, pe=1)
    assert s0 > s1
    # ratio approximately the weight ratio (ceil effects aside)
    assert s0 / s1 == pytest.approx(2.0, rel=0.1)


def test_wf_weight_validation():
    with pytest.raises(TechniqueError, match="shape"):
        get_technique("WF").make(100, 4, weights=[1.0, 2.0])
    with pytest.raises(TechniqueError, match="positive"):
        get_technique("WF").make(100, 4, weights=[1.0, -1.0, 1.0, 1.0])


def test_wf_requires_pe_argument():
    calc = get_technique("WF").make(100, 4, weights=None)
    with pytest.raises(TechniqueError, match="PE id"):
        calc.size_at(0)


def test_awf_b_adapts_weights_from_feedback():
    calc = get_technique("AWF-B").make(100000, 4)
    # grab a first batch, report PE0 as 4x faster than the others
    for pe in range(4):
        size = calc.size_at(pe, pe=pe)
        time = size * (0.25 if pe == 0 else 1.0)
        calc.record(pe, size, compute_time=time)
    # after a full batch the weights refresh
    assert calc.weights[0] > calc.weights[1]
    s_fast = calc.size_at(4, pe=0)
    calc2 = get_technique("AWF-B").make(100000, 4)
    for pe in range(4):
        size = calc2.size_at(pe, pe=pe)
        calc2.record(pe, size, compute_time=float(size))
    s_nominal = calc2.size_at(4, pe=0)
    assert s_fast > s_nominal


def test_awf_c_adapts_every_chunk():
    calc = get_technique("AWF-C").make(100000, 4)
    s0 = calc.size_at(0, pe=0)
    calc.record(0, s0, compute_time=s0 * 0.1)  # PE0 fast
    s1 = calc.size_at(1, pe=1)
    calc.record(1, s1, compute_time=s1 * 1.0)  # PE1 nominal
    # variant C refreshes after every chunk: two records are enough to
    # skew the weights (B would wait for a full batch of p=4 grabs)
    assert calc.weights[0] > calc.weights[1]


def test_awf_d_includes_overhead_time():
    calc_d = get_technique("AWF-D").make(100000, 4)
    calc_b = get_technique("AWF-B").make(100000, 4)
    for pe in range(4):
        for calc in (calc_d, calc_b):
            size = calc.size_at(pe, pe=pe)
            calc.record(pe, size, compute_time=float(size), overhead_time=float(size))
    # D counts overhead -> sees PE rates as half of what B sees; weights
    # stay uniform in both cases but the recorded times differ
    assert calc_d._time.sum() == pytest.approx(2 * calc_b._time.sum())


def test_af_bootstrap_then_adapts():
    calc = get_technique("AF").make(100000, 4)
    # bootstrap: first grabs use the FAC2 rule
    s = calc.size_at(0, pe=0)
    assert s == math.ceil(100000 / 8)
    # feed two chunks with low variance -> larger confident chunks
    calc.record(0, 100, compute_time=100.0)
    calc.record(0, 100, compute_time=100.0)
    remaining_before = calc.n - calc.scheduled
    s2 = calc.size_at(1, pe=0)
    # zero observed variance -> b=0 -> x=2 -> FAC2-like half split
    assert s2 == math.ceil(remaining_before / 8)


def test_af_high_variance_gives_smaller_chunks():
    lo = get_technique("AF").make(100000, 4)
    hi = get_technique("AF").make(100000, 4)
    for calc, times in ((lo, (1.0, 1.0)), (hi, (0.2, 1.8))):
        calc.size_at(0, pe=0)
        calc.record(0, 1, compute_time=times[0])
        calc.record(0, 1, compute_time=times[1])
    assert hi.size_at(1, pe=0) < lo.size_at(1, pe=0)


def test_rnd_is_seeded_reproducible_and_bounded():
    n, p = 10000, 4
    a = get_technique("RND").make(n, p, seed=42)
    b = get_technique("RND").make(n, p, seed=42)
    assert a.sequence() == b.sequence()
    low = max(1, n // (100 * p))
    high = math.ceil(n / (2 * p))
    # every chunk except a possibly clipped tail is within the bounds
    assert all(low <= s <= high for s in a.sequence()[:-1])
    assert sum(a.sequence()) == n


def test_rnd_is_deterministic_given_the_spec():
    """The sequence derives from (n, p, seed) alone: a runtime rng
    argument is ignored, and different seeds give different sequences."""
    n, p = 10000, 4
    base = get_technique("RND").make(n, p)
    with_rng = get_technique("RND").make(n, p, rng=np.random.default_rng(99))
    assert base.deterministic and with_rng.deterministic
    assert base.sequence() == with_rng.sequence()
    other_seed = get_technique("RND").make(n, p, seed=7)
    assert other_seed.sequence() != base.sequence()
    # start_at/step_of work like any deterministic technique (dCC path)
    assert base.start_at(0) == 0
    assert base.step_of(base.sequence()[0]) == 1


# ---------------------------------------------------------------------------
# calculator machinery
# ---------------------------------------------------------------------------


def test_start_at_matches_prefix_sums():
    calc = make_calc("GSS", 1000, 8)
    seq = calc.sequence()
    start = 0
    for step, size in enumerate(seq):
        assert calc.start_at(step) == start
        start += size


def test_start_at_rejected_for_adaptive():
    calc = get_technique("AWF-B").make(100, 4)
    with pytest.raises(TechniqueError, match="adaptive"):
        calc.start_at(0)


def test_negative_step_rejected():
    calc = make_calc("GSS", 100, 4)
    with pytest.raises(TechniqueError, match="negative"):
        calc.size_at(-1)


def test_size_beyond_exhaustion_is_zero():
    calc = make_calc("GSS", 100, 4)
    total = calc.total_steps()
    assert calc.size_at(total) == 0
    assert calc.size_at(total + 5) == 0


def test_invalid_construction():
    with pytest.raises(TechniqueError):
        get_technique("GSS").make(-1, 4)
    with pytest.raises(TechniqueError):
        get_technique("GSS").make(100, 0)


# ---------------------------------------------------------------------------
# chunk helpers
# ---------------------------------------------------------------------------


def test_chunk_basics():
    c = Chunk(step=0, start=10, size=5)
    assert c.end == 15
    assert len(c) == 5
    left, right = c.split(2)
    assert (left.start, left.size) == (10, 2)
    assert (right.start, right.size) == (12, 3)


def test_chunk_split_bounds():
    c = Chunk(step=0, start=0, size=5)
    with pytest.raises(ValueError):
        c.split(6)


def test_verify_schedule_detects_gap():
    chunks = [Chunk(0, 0, 5), Chunk(1, 6, 4)]
    with pytest.raises(ScheduleError, match="gap"):
        verify_schedule(chunks, 10)


def test_verify_schedule_detects_overlap():
    chunks = [Chunk(0, 0, 5), Chunk(1, 4, 6)]
    with pytest.raises(ScheduleError, match="overlap"):
        verify_schedule(chunks, 10)


def test_verify_schedule_detects_short_coverage():
    chunks = [Chunk(0, 0, 5)]
    with pytest.raises(ScheduleError, match="covers"):
        verify_schedule(chunks, 10)


def test_verify_schedule_accepts_out_of_order():
    chunks = [Chunk(1, 5, 5), Chunk(0, 0, 5)]
    verify_schedule(chunks, 10)


def test_chunk_sizes_in_step_order():
    chunks = [Chunk(1, 5, 5), Chunk(0, 0, 5)]
    assert chunk_sizes(chunks) == [5, 5]


# ---------------------------------------------------------------------------
# memoised sequence materialisation
# ---------------------------------------------------------------------------
def test_sequence_memoised_across_calculators():
    """Two calculators over the same (technique, n, p) share one
    materialised sequence array (the figure-sweep hot path)."""
    from repro.core.technique_base import clear_sequence_cache

    clear_sequence_cache()
    a = get_technique("GSS").make(10_000, 16)
    b = get_technique("GSS").make(10_000, 16)
    assert a.sequence() == b.sequence()
    a.total_steps()
    b.total_steps()
    assert a._sizes_arr is b._sizes_arr  # shared from the global memo


def test_memoised_sequence_profile_sensitive():
    from repro.core import IterationProfile

    p1 = IterationProfile(mu=1.0, sigma=0.5)
    p2 = IterationProfile(mu=1.0, sigma=2.0)
    a = get_technique("FAC").make(10_000, 8, profile=p1)
    b = get_technique("FAC").make(10_000, 8, profile=p2)
    assert a.sequence() != b.sequence()
    sum_a, sum_b = sum(a.sequence()), sum(b.sequence())
    assert sum_a == sum_b == 10_000


def test_step_of_inverts_start_at():
    calc = get_technique("TSS").make(5_000, 8)
    for step in range(calc.total_steps()):
        start = calc.start_at(step)
        assert calc.step_of(start) == step
        end = start + calc.size_at(step) - 1
        assert calc.step_of(end) == step
    with pytest.raises(TechniqueError):
        calc.step_of(5_000)


def test_step_of_rejects_adaptive():
    calc = get_technique("AF").make(100, 4)
    with pytest.raises(TechniqueError, match="undefined"):
        calc.step_of(0)
