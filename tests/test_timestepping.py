"""Tests for time-stepped AWF execution (repro.core.timestepping)."""

import numpy as np
import pytest

from repro.cluster.machine import heterogeneous, homogeneous
from repro.cluster.noise import NO_NOISE
from repro.core.timestepping import TimeSteppedLoop, TimeStepRecord
from repro.models import FlatMpiModel, MpiMpiModel
from repro.workloads import constant_workload


class QuietModel(FlatMpiModel):
    """Flat model with noise disabled for analytic assertions."""

    def run(self, **kwargs):
        kwargs.setdefault("noise", NO_NOISE)
        return super().run(**kwargs)


def make_loop(cluster, inter="AWF", intra="SS", smoothing=None):
    return TimeSteppedLoop(
        model=QuietModel(),
        workload=constant_workload(2048, cost=1e-3),
        cluster=cluster,
        inter=inter,
        intra=intra,
        ppn=4,
        smoothing=smoothing,
    )


def test_initial_weights_uniform():
    loop = make_loop(homogeneous(2, 4))
    assert np.allclose(loop.weights, 1.0)


def test_run_returns_history():
    loop = make_loop(homogeneous(2, 4))
    history = loop.run(3)
    assert len(history) == 3
    assert all(isinstance(r, TimeStepRecord) for r in history)
    assert [r.step for r in history] == [0, 1, 2]
    assert all(r.parallel_time > 0 for r in history)


def test_weights_converge_to_speed_ratio():
    """On a 1x-vs-3x cluster the learned weights must approach the 3:1
    speed ratio (flat model: one weight per worker; ranks 0-3 slow,
    ranks 4-7 fast; normalised to sum to n_pes = 8)."""
    cluster = heterogeneous([4, 4], core_speeds=[1.0, 3.0])
    loop = make_loop(cluster)
    assert loop.n_pes == 8
    loop.run(4)
    weights = loop.weights
    assert weights[4] / weights[0] == pytest.approx(3.0, rel=0.15)
    assert weights.sum() == pytest.approx(8.0)


def test_adaptation_improves_time_on_heterogeneous_cluster():
    cluster = heterogeneous([4, 4], core_speeds=[1.0, 3.0])
    loop = make_loop(cluster, intra="STATIC")
    history = loop.run(4)
    # after adaptation the loop should not be slower than step 0
    assert history[-1].parallel_time <= history[0].parallel_time * 1.02


def test_ema_smoothing_validated():
    loop = make_loop(homogeneous(2, 4), smoothing=2.0)
    with pytest.raises(ValueError, match="smoothing"):
        loop.run_step()


def test_ema_smoothing_tracks_recent_rates():
    cluster = heterogeneous([4, 4], core_speeds=[1.0, 2.0])
    cumulative = make_loop(cluster)
    ema = make_loop(cluster, smoothing=0.9)
    cumulative.run(3)
    ema.run(3)
    # both must discover node 1's workers are faster
    assert cumulative.weights[4] > cumulative.weights[0]
    assert ema.weights[4] > ema.weights[0]


def test_summary_renders():
    loop = make_loop(homogeneous(2, 4))
    loop.run(2)
    text = loop.summary()
    assert "step 0" in text and "step 1" in text
    assert "weights=" in text


def test_works_with_hierarchical_model():
    loop = TimeSteppedLoop(
        model=MpiMpiModel(),
        workload=constant_workload(1024, cost=1e-3),
        cluster=heterogeneous([4, 4], core_speeds=[1.0, 2.0]),
        inter="WF",
        intra="GSS",
        ppn=4,
    )
    history = loop.run(2)
    assert history[-1].parallel_time > 0
    # hierarchical model: weights are per node
    assert loop.n_pes == 2
    assert loop.weights[1] > loop.weights[0]


def test_seed_advances_per_step():
    """Each time step draws fresh noise (seed + step)."""
    loop = TimeSteppedLoop(
        model=FlatMpiModel(),
        workload=constant_workload(512, cost=1e-3),
        cluster=homogeneous(2, 4),
        inter="FAC2",
        intra="SS",
        ppn=4,
    )
    history = loop.run(2)
    assert history[0].parallel_time != history[1].parallel_time
