"""Tests for the workload layer (base, Mandelbrot, PSIA, synthetic, traces)."""

import numpy as np
import pytest

from repro.core.technique_base import IterationProfile
from repro.workloads import (
    Workload,
    banded_workload,
    bimodal_workload,
    constant_workload,
    exponential_workload,
    gaussian_workload,
    load_trace,
    mandelbrot_workload,
    psia_workload,
    ramp_workload,
    save_trace,
    uniform_workload,
)
from repro.workloads.mandelbrot import escape_counts, render_ascii
from repro.workloads.psia import neighbourhood_sizes, spin_image, synthetic_object


# ---------------------------------------------------------------------------
# Workload base
# ---------------------------------------------------------------------------


def test_block_cost_matches_sum():
    wl = Workload("w", np.array([1.0, 2.0, 3.0, 4.0]))
    assert wl.block_cost(0, 4) == pytest.approx(10.0)
    assert wl.block_cost(1, 2) == pytest.approx(5.0)
    assert wl.block_cost(3, 1) == pytest.approx(4.0)
    assert wl.block_cost(2, 0) == 0.0


def test_block_cost_bounds_checked():
    wl = Workload("w", np.ones(10))
    with pytest.raises(IndexError):
        wl.block_cost(5, 6)
    with pytest.raises(IndexError):
        wl.block_cost(-1, 2)


def test_costs_must_be_1d_and_nonnegative():
    with pytest.raises(ValueError, match="1-D"):
        Workload("w", np.ones((2, 2)))
    with pytest.raises(ValueError, match="non-negative"):
        Workload("w", np.array([1.0, -1.0]))


def test_profile_matches_moments():
    costs = np.array([1.0, 2.0, 3.0])
    wl = Workload("w", costs)
    profile = wl.profile()
    assert isinstance(profile, IterationProfile)
    assert profile.mu == pytest.approx(2.0)
    assert profile.sigma == pytest.approx(costs.std())


def test_profile_of_empty_workload_raises():
    with pytest.raises(ValueError, match="empty"):
        Workload("w", np.array([])).profile()


def test_scaled_to_preserves_shape():
    wl = uniform_workload(100, seed=1)
    scaled = wl.scaled_to(42.0)
    assert scaled.total_cost == pytest.approx(42.0)
    # relative shape unchanged
    ratio = scaled.costs / wl.costs
    assert np.allclose(ratio, ratio[0])
    assert scaled.cov == pytest.approx(wl.cov)
    assert scaled.meta["scaled_from"] == wl.name


def test_scaled_to_zero_cost_raises():
    wl = Workload("w", np.array([]))
    with pytest.raises(ValueError):
        wl.scaled_to(1.0)


def test_subset():
    wl = uniform_workload(100, seed=2)
    sub = wl.subset(10)
    assert sub.n == 10
    assert np.array_equal(sub.costs, wl.costs[:10])
    with pytest.raises(ValueError):
        wl.subset(101)


def test_execute_requires_executor():
    wl = Workload("w", np.ones(4))
    with pytest.raises(NotImplementedError):
        wl.execute(0, 2)


# ---------------------------------------------------------------------------
# Mandelbrot
# ---------------------------------------------------------------------------


def test_escape_counts_known_points():
    counts = escape_counts(64, 64, max_iter=128)
    # pixel nearest to c=0 (in the set) never escapes
    xs = np.linspace(-2.5, 1.0, 64)
    ys = np.linspace(-1.25, 1.25, 64)
    col = int(np.argmin(np.abs(xs)))
    row = int(np.argmin(np.abs(ys)))
    assert counts[row, col] == 128
    # the far corner escapes immediately
    assert counts[0, 0] <= 1


def test_escape_counts_shape_and_range():
    counts = escape_counts(32, 16, max_iter=64)
    assert counts.shape == (16, 32)
    assert counts.min() >= 0
    assert counts.max() <= 64


def test_escape_counts_invalid_args():
    with pytest.raises(ValueError):
        escape_counts(0, 8, 8)


def test_mandelbrot_workload_costs_derive_from_counts():
    wl = mandelbrot_workload(32, 16, max_iter=64, iter_time=1e-6, base_time=1e-7)
    counts = escape_counts(32, 16, max_iter=64).ravel()
    assert np.allclose(wl.costs, 1e-7 + 1e-6 * counts)
    assert wl.n == 512


def test_mandelbrot_executor_returns_real_counts():
    wl = mandelbrot_workload(16, 16, max_iter=32)
    block = wl.execute(10, 5)
    full = escape_counts(16, 16, max_iter=32).ravel()
    assert np.array_equal(block, full[10:15])


def test_mandelbrot_total_seconds_calibration():
    wl = mandelbrot_workload(32, 32, max_iter=64, total_seconds=7.5)
    assert wl.total_cost == pytest.approx(7.5)


def test_mandelbrot_is_strongly_imbalanced():
    wl = mandelbrot_workload(64, 64, max_iter=256)
    assert wl.cov > 1.0  # the paper's high-imbalance kernel


def test_render_ascii():
    art = render_ascii(escape_counts(32, 32, 32), width=40)
    lines = art.splitlines()
    assert len(lines) >= 4
    assert all(len(line) == 40 for line in lines)
    assert "@" in art  # in-set pixels hit the top of the palette


# ---------------------------------------------------------------------------
# PSIA
# ---------------------------------------------------------------------------


def test_synthetic_object_on_unit_sphere():
    points, normals = synthetic_object(500, seed=3)
    radii = np.linalg.norm(points, axis=1)
    assert np.allclose(radii, 1.0)
    assert np.allclose(points, normals)


def test_synthetic_object_cluster_increases_density():
    uniform_pts, _ = synthetic_object(2000, cluster_fraction=0.0, seed=4)
    clustered_pts, _ = synthetic_object(2000, cluster_fraction=0.4, seed=4)
    pole = np.array([0.0, 0.0, 1.0])
    near_pole = lambda pts: (pts @ pole > 0.9).sum()
    assert near_pole(clustered_pts) > near_pole(uniform_pts)


def test_synthetic_object_validation():
    with pytest.raises(ValueError):
        synthetic_object(0)
    with pytest.raises(ValueError):
        synthetic_object(10, cluster_fraction=1.5)


def test_neighbourhood_sizes_count_self():
    points, _ = synthetic_object(300, seed=5)
    sizes = neighbourhood_sizes(points, 0.5)
    assert sizes.min() >= 1  # every point is inside its own ball
    assert sizes.max() <= 300


def test_spin_image_properties():
    points, normals = synthetic_object(400, seed=6)
    image = spin_image(points, normals, index=5, support_radius=0.5, bins=8)
    assert image.shape == (8, 8)
    assert image.sum() > 0
    # histogram counts points within support, excluding the point itself
    assert image.sum() < 400


def test_spin_image_excludes_self():
    points = np.array([[1.0, 0, 0], [0.99, 0.1, 0], [0.95, -0.1, 0.1]])
    points = points / np.linalg.norm(points, axis=1, keepdims=True)
    image = spin_image(points, points, 0, support_radius=1.0, bins=4)
    assert image.sum() == 2  # the two neighbours, not the point itself


def test_psia_workload_structure():
    wl = psia_workload(n_points=512, support_radius=0.3, point_time=1e-7)
    assert wl.n == 512
    assert wl.cov < 1.5  # mild imbalance by construction
    assert wl.meta["kernel"] == "psia"


def test_psia_executor_generates_real_images():
    wl = psia_workload(n_points=128, support_radius=0.5, bins=8)
    images = wl.execute(3, 4)
    assert images.shape == (4, 8, 8)
    assert images.sum() > 0


def test_psia_deterministic_given_seed():
    a = psia_workload(n_points=256, seed=9)
    b = psia_workload(n_points=256, seed=9)
    assert np.array_equal(a.costs, b.costs)


# ---------------------------------------------------------------------------
# synthetic generators
# ---------------------------------------------------------------------------


def test_constant_workload():
    wl = constant_workload(10, cost=2e-3)
    assert np.allclose(wl.costs, 2e-3)
    assert wl.cov == pytest.approx(0.0, abs=1e-12)
    with pytest.raises(ValueError):
        constant_workload(10, cost=0.0)


def test_uniform_workload_bounds():
    wl = uniform_workload(1000, low=1e-3, high=2e-3, seed=1)
    assert wl.costs.min() >= 1e-3
    assert wl.costs.max() <= 2e-3
    with pytest.raises(ValueError):
        uniform_workload(10, low=2e-3, high=1e-3)


def test_gaussian_workload_clipped_positive():
    wl = gaussian_workload(1000, mu=1e-4, sigma=1e-3, seed=2)
    assert wl.costs.min() > 0


def test_exponential_workload_cov_near_one():
    wl = exponential_workload(20000, mu=1e-3, seed=3)
    assert wl.cov == pytest.approx(1.0, abs=0.05)


def test_bimodal_workload_fraction():
    wl = bimodal_workload(10000, fast=1.0, slow=2.0, slow_fraction=0.25, seed=4)
    slow_count = (wl.costs == 2.0).sum()
    assert 0.2 < slow_count / 10000 < 0.3


def test_banded_workload_band_position():
    wl = banded_workload(100, fast=1.0, slow=9.0, band=(0.2, 0.4))
    assert np.all(wl.costs[20:40] == 9.0)
    assert np.all(wl.costs[:20] == 1.0)
    assert np.all(wl.costs[40:] == 1.0)
    with pytest.raises(ValueError):
        banded_workload(100, band=(0.5, 0.4))


def test_ramp_workload_direction():
    dec = ramp_workload(100, first=2e-3, last=1e-4)
    assert dec.costs[0] > dec.costs[-1]
    inc = ramp_workload(100, first=1e-4, last=2e-3)
    assert inc.costs[0] < inc.costs[-1]


def test_generators_are_seeded():
    a = uniform_workload(100, seed=7)
    b = uniform_workload(100, seed=7)
    c = uniform_workload(100, seed=8)
    assert np.array_equal(a.costs, b.costs)
    assert not np.array_equal(a.costs, c.costs)


# ---------------------------------------------------------------------------
# trace persistence
# ---------------------------------------------------------------------------


def test_save_load_trace_roundtrip(tmp_path):
    wl = mandelbrot_workload(16, 16, max_iter=32)
    path = save_trace(wl, tmp_path / "mb.npz")
    loaded = load_trace(path)
    assert loaded.name == wl.name
    assert np.array_equal(loaded.costs, wl.costs)
    assert loaded.meta["width"] == 16
    # executors are code, not data
    assert loaded.executor is None


def test_save_trace_adds_suffix(tmp_path):
    wl = constant_workload(5)
    path = save_trace(wl, tmp_path / "t")
    assert path.suffix == ".npz"
    assert path.exists()


def test_load_trace_rejects_bad_version(tmp_path):
    import json

    import numpy as np

    path = tmp_path / "bad.npz"
    meta = json.dumps({"name": "x", "meta": {}, "version": 999})
    np.savez(path, costs=np.ones(3), meta=np.bytes_(meta.encode()))
    with pytest.raises(ValueError, match="version"):
        load_trace(path)
