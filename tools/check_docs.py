#!/usr/bin/env python
"""Link-check the documentation so documented paths cannot rot.

Scans ``README.md`` and ``docs/*.md`` for markdown links and verifies

* relative links resolve to files/directories that exist in the repo;
* ``#anchor`` fragments (intra- or cross-file) match a heading's
  GitHub-style slug in the target document **exactly** — the fragment
  is compared verbatim against the generated slugs (GitHub fragments
  are lowercase; a ``#Mixed-Case`` link 404s there, so it fails here),
  and duplicate headings get GitHub's ``-1``/``-2`` suffixes so links
  to the later occurrences validate too;
* ``http(s)``/``mailto`` links are skipped (CI runs offline).

Usage (from the repository root)::

    python tools/check_docs.py

Exits 1 and prints one line per broken link otherwise.  Stdlib only.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Iterator, List, Set, Tuple

ROOT = pathlib.Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def doc_files() -> List[pathlib.Path]:
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def iter_prose_lines(path: pathlib.Path) -> Iterator[Tuple[int, str]]:
    """Lines outside fenced code blocks, with 1-based line numbers."""
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield number, line


def slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes.

    Backticks and emphasis asterisks are markdown markup and vanish;
    underscores are *literal text* and survive (GitHub slugs
    ``CALIBRATED_COSTS`` with the underscore intact).
    """
    text = heading.strip().lower()
    text = re.sub(r"[`*]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> Set[str]:
    """All anchor slugs a document exposes, GitHub-style.

    Duplicate headings yield suffixed anchors exactly as GitHub
    generates them: the first occurrence gets the bare slug, the
    ``k``-th repeat gets ``slug-k``.
    """
    anchors: Set[str] = set()
    counts: dict = {}
    for _, line in iter_prose_lines(path):
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = slugify(match.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def check() -> List[str]:
    errors: List[str] = []
    for doc in doc_files():
        for number, line in iter_prose_lines(doc):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part, _, anchor = target.partition("#")
                where = f"{doc.relative_to(ROOT)}:{number}"
                resolved = (
                    doc if not path_part else (doc.parent / path_part).resolve()
                )
                if not resolved.exists():
                    errors.append(f"{where}: broken link -> {target}")
                    continue
                if anchor:
                    if resolved.is_dir() or resolved.suffix != ".md":
                        errors.append(
                            f"{where}: anchor on non-markdown target -> {target}"
                        )
                    elif anchor not in anchors_of(resolved):
                        # exact match: GitHub fragments are the literal
                        # generated slug; re-slugifying the fragment
                        # would wave through links GitHub 404s on
                        errors.append(
                            f"{where}: missing anchor #{anchor} -> {target}"
                        )
    return errors


def main() -> int:
    docs = doc_files()
    errors = check()
    for error in errors:
        print(error)
    print(
        f"checked {len(docs)} documents "
        f"({', '.join(str(d.relative_to(ROOT)) for d in docs)}): "
        f"{len(errors)} broken link(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
