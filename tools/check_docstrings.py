#!/usr/bin/env python
"""Docstring-check the ``repro.cluster`` machine-model modules.

The cluster layer is the package's public vocabulary for hardware,
costs and placement, so its API documentation must not rot.  This
checker parses the modules with ``ast`` (no imports needed) and
enforces:

* every module has a docstring, and that docstring states the unit
  convention (mentions ``second``) and the index convention (mentions
  ``rank`` or ``node index``) — the two ambiguities that have caused
  real bugs in this codebase;
* every public class, function, method and property (name not starting
  with ``_``) has a docstring; ``__init__`` and other dunders are
  exempt (the class docstring covers construction).

Usage (from the repository root)::

    python tools/check_docstrings.py

Exits 1 and prints one ``file:line`` diagnostic per violation
otherwise.  Stdlib only.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import List

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: modules under the docstring contract (repo-relative paths)
CHECKED_MODULES = [
    "src/repro/cluster/__init__.py",
    "src/repro/cluster/costs.py",
    "src/repro/cluster/faults.py",
    "src/repro/cluster/interconnect.py",
    "src/repro/cluster/machine.py",
    "src/repro/cluster/noise.py",
    "src/repro/cluster/placement_opt.py",
    "src/repro/cluster/topology.py",
    "src/repro/models/dcc.py",
    "src/repro/sim/cohorts.py",
]

#: every checked module's docstring corpus must state these conventions
UNIT_TOKEN = "second"
INDEX_TOKENS = ("rank", "node index")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_node(
    node: ast.AST, path: pathlib.Path, errors: List[str], owner: str = ""
) -> None:
    """Recurse over public defs, flagging any without a docstring."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            name = child.name
            if not _is_public(name):
                continue
            qualified = f"{owner}{name}"
            if ast.get_docstring(child) is None:
                kind = "class" if isinstance(child, ast.ClassDef) else "function"
                errors.append(
                    f"{path.relative_to(ROOT)}:{child.lineno}: "
                    f"public {kind} {qualified!r} has no docstring"
                )
            if isinstance(child, ast.ClassDef):
                _check_node(child, path, errors, owner=f"{qualified}.")
            # nested defs inside functions are implementation detail


def check() -> List[str]:
    """Return one diagnostic per violation across all checked modules."""
    errors: List[str] = []
    for rel in CHECKED_MODULES:
        path = ROOT / rel
        if not path.exists():
            errors.append(f"{rel}: checked module is missing")
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        module_doc = ast.get_docstring(tree)
        if module_doc is None:
            errors.append(f"{rel}:1: module has no docstring")
            continue
        lowered = module_doc.lower()
        if UNIT_TOKEN not in lowered:
            errors.append(
                f"{rel}:1: module docstring must state the unit convention "
                f"(mention {UNIT_TOKEN!r}; all latencies are seconds)"
            )
        if not any(token in lowered for token in INDEX_TOKENS):
            errors.append(
                f"{rel}:1: module docstring must state the index convention "
                f"(mention one of {INDEX_TOKENS}; ranks vs node indices)"
            )
        _check_node(tree, path, errors)
    return errors


def main() -> int:
    """CLI entry point: print violations, exit 1 if any."""
    errors = check()
    for error in errors:
        print(error)
    print(
        f"checked {len(CHECKED_MODULES)} modules for docstring coverage: "
        f"{len(errors)} violation(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
